// Package harness runs the paper's evaluation (§5): every corpus program is
// encoded per memory model and unrolling bound, and each resulting SMT
// instance (a "verification task") is solved with each decision strategy.
// Aggregators reproduce Table 1 (both-solved time and speedup), Table 2
// (decisions/propagations/conflicts), Table 3 (Z3 vs ZPRE⁻ vs ZPRE summary)
// and the data series behind Figures 6–11 (per-task scatter and
// per-subcategory times).
package harness

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"zpre/internal/core"
	"zpre/internal/cprog"
	"zpre/internal/dataflow"
	"zpre/internal/encode"
	"zpre/internal/faultinject"
	"zpre/internal/memmodel"
	"zpre/internal/obs"
	"zpre/internal/order"
	"zpre/internal/rg"
	"zpre/internal/sat"
	"zpre/internal/smt"
	"zpre/internal/svcomp"
	"zpre/internal/telemetry"
	"zpre/internal/witness"
)

// Task is one SMT instance: a program at a memory model and unroll bound.
type Task struct {
	Bench svcomp.Benchmark
	Model memmodel.Model
	Bound int
}

// ID renders a unique task identifier.
func (t Task) ID() string {
	return fmt.Sprintf("%s/%s@%s/k%d", t.Bench.Subcategory, t.Bench.Name, t.Model, t.Bound)
}

// RunID renders the stable run identifier of one (task, strategy) run —
// "sub/bench@model/k<bound>/strategy". It is the join key attached to span
// traces, trace meta records, slog lines and the /runs surface.
func RunID(t Task, s core.Strategy) string {
	return t.ID() + "/" + s.String()
}

// RunResult is the outcome of solving one task with one strategy.
type RunResult struct {
	Task     Task
	Strategy core.Strategy
	Status   sat.Status
	Solve    time.Duration
	Encode   time.Duration
	// Unroll is the loop-unrolling time (the remaining frontend phase; the
	// static-analysis share of Encode is VC.StaticTime).
	Unroll time.Duration
	// Timings splits Solve across BCP / theory / analyze / reduce
	// (collected under Config.TimePhases or when tracing is on).
	Timings sat.SearchTimings
	// OrderStats are the ordering theory's work counters for this run.
	OrderStats order.Stats
	Stats      sat.Stats
	// VC holds the encoder's formula-size counters (rf/ws variables, clauses,
	// and — under Config.StaticPrune — how many candidates the static
	// analysis dropped).
	VC  encode.Stats
	Err error
	// Stop records why the solver returned Unknown (deadline, budgets,
	// memout, cancellation); StopNone for a verdict.
	Stop sat.StopReason
	// Completed marks a terminal outcome: a verdict, a timeout/memout, a
	// contained panic or any other error. Only cancelled runs (SIGINT or a
	// cancelled context) are incomplete — they are what `-resume` re-runs.
	Completed bool
	// Resumed marks a run restored from a checkpoint rather than executed.
	Resumed bool
	// Checked: the verdict passed independent validation (CheckVerdicts
	// mode). CheckSkipped: the proof exceeded the checking cap.
	Checked      bool
	CheckSkipped bool
	// CheckErr is a validation failure (a solver bug if it ever happens).
	CheckErr error
	// Incremental marks a run solved as one bound of an unroll sweep on a
	// live solver (Config.Incremental) rather than as a fresh instance.
	// Stats then hold only this bound's counter increments.
	Incremental bool
	// CumulativeSolve is the sweep's accumulated solve time through this
	// bound; Cumulative the solver counters since the sweep began.
	CumulativeSolve time.Duration
	Cumulative      sat.Stats
	// RGProved marks a task discharged by the rely-guarantee engine
	// (Config.RG): the program is safe at every bound, the verdict is unsat
	// and the SMT backend never ran (zero decisions, zero events).
	RGProved bool
	// RGStabilizeIters is the engine's outer fixpoint round count for this
	// task's (benchmark, model) pair (Config.RG only).
	RGStabilizeIters int
	// RGSkippedPrefilter marks a pair the rely-guarantee pre-filter
	// (Config.RGPrefilter) deemed hopeless: the proof fixpoint never ran
	// and the SMT backend decided the task alone.
	RGSkippedPrefilter bool
}

// Solved reports whether the run finished within budget.
func (r RunResult) Solved() bool { return r.Err == nil && r.Status != sat.Unknown }

// Failure classifies an unsolved run: the error's class when one is set
// (panic, error, ...), otherwise the solver's stop reason (timeout, memout,
// cancelled; an Unknown with no recorded reason counts as timeout).
// FailNone for solved runs.
func (r RunResult) Failure() sat.FailureKind {
	if r.Err != nil {
		return sat.Classify(r.Err)
	}
	if r.Status == sat.Unknown {
		if k := r.Stop.Failure(); k != sat.FailNone {
			return k
		}
		return sat.FailTimeout
	}
	return sat.FailNone
}

// Config controls an evaluation run.
type Config struct {
	// Models to evaluate (default: SC, TSO, PSO — the paper's three).
	Models []memmodel.Model
	// Strategies to evaluate (default: Baseline, ZPREMinus, ZPRE).
	Strategies []core.Strategy
	// Bounds are the unroll bounds (the paper uses 1..6; loop-free programs
	// are deduplicated to bound 1, as in §5 "after eliminating duplications").
	Bounds []int
	// Timeout per task (the paper uses 1800 s; default 10 s here).
	Timeout time.Duration
	// MaxConflicts optionally caps the search instead of/in addition to the
	// wall clock (deterministic budgets for tests).
	MaxConflicts uint64
	// MaxDecisions optionally caps decisions per solve (deterministic
	// budget; Unknown(decision-budget) classifies as timeout).
	MaxDecisions uint64
	// MaxMemoryBytes caps the solver's approximate allocation accounting
	// (clause DB + trail); exceeding it yields a graceful Unknown(memout)
	// instead of an OOM kill.
	MaxMemoryBytes int64
	// Context, when non-nil, cancels the sweep cooperatively: in-flight
	// solves stop at the next budget poll, queued runs are marked cancelled,
	// and Run returns the partial results (plus a final checkpoint when
	// CheckpointPath is set).
	Context context.Context
	// Width is the program integer bit width (default 8).
	Width int
	// Seed drives random polarities.
	Seed int64
	// Subcategories restricts the corpus (empty = all).
	Subcategories []string
	// CheckVerdicts validates every verdict independently: unsat answers by
	// proof checking (internal/proof; skipped above CheckLearntCap learnt
	// clauses — the naive RUP checker is quadratic), sat answers by witness
	// schedule validation (internal/witness). Failures land in
	// RunResult.CheckErr.
	CheckVerdicts bool
	// CheckLearntCap bounds proof checking (default 4000 learnt clauses).
	CheckLearntCap int
	// StaticPrune drops rf/ws interference candidates the static lockset/MHP
	// analysis proves infeasible before they reach the solver. The encoding
	// stays equisatisfiable; RunResult.VC records how many were dropped.
	StaticPrune bool
	// Dataflow enables the value-flow pre-analysis: pre-encoding
	// simplification, value-infeasible rf pruning and fixed happens-before
	// derivation (see encode.Options.Dataflow). Equisatisfiable;
	// RunResult.VC.ValuePruned/FoldedAssigns/FixedHB count its effects.
	Dataflow bool
	// Parallel is the number of worker goroutines solving tasks. Default 1:
	// sequential runs give the cleanest per-task wall-clock timings (the
	// quantity the paper reports). Set to runtime.NumCPU() (or use
	// RunParallel) for throughput when only verdicts and counters matter —
	// the corpus sweep is embarrassingly parallel across tasks.
	Parallel int
	// Progress, when non-nil, receives one line per completed task.
	Progress io.Writer
	// TraceDir, when set, writes one structured JSONL search trace per run
	// into this directory (created if missing). Every run gets a private
	// sink, so parallel workers never interleave events; file names come
	// from TraceFileName.
	TraceDir string
	// TraceEvery subsamples high-volume trace events (every Nth
	// decision/conflict; 0 or 1 = all). Counts stay exact in the summary.
	TraceEvery int
	// TimePhases splits each run's solve time across BCP / theory /
	// analyze / reduce (RunResult.Timings, exported in the JSON). Implied
	// by TraceDir.
	TimePhases bool
	// Metrics, when non-nil, receives live aggregate counters across all
	// workers (runs_done, solves_running, solver_conflicts, ...) for
	// progress displays; see internal/telemetry.Registry.
	Metrics *telemetry.Registry
	// CheckpointPath, when set, periodically atomic-writes (tmp+rename) the
	// results recorded so far as a JSON export, and writes a final
	// checkpoint when the sweep ends or is cancelled.
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in completed runs
	// (default 16).
	CheckpointEvery int
	// Resume, when non-nil, is a prior (possibly partial) JSON export —
	// see LoadCheckpoint. Completed (task, strategy) pairs found in it are
	// restored instead of re-run; cancelled and missing pairs execute.
	Resume *JSONResults
	// Faults injects deterministic failures (panics, stalls, corrupted
	// theory verdicts) into matching runs; see internal/faultinject. Used
	// by the resilience tests and `evaluate -inject`.
	Faults *faultinject.Set
	// RG runs the rely-guarantee proof-outline engine (internal/rg) once
	// per (benchmark, model) pair before solving. Tasks of a proved pair
	// report unsat with RunResult.RGProved and never touch the SMT backend
	// (at any bound — the proof is unbounded). Unproven pairs have the
	// engine's interference-stabilized variable ranges injected as guarded
	// per-read invariant constraints (RunResult.VC.RGInvariants); the
	// instance stays equisatisfiable. Composes with Incremental: a proved
	// group skips its whole sweep, an unproven group asserts each
	// invariant once when its read is created.
	RG bool
	// RGDomain selects the rely-guarantee abstract domain: rg.DomainInterval
	// (the default when empty) or rg.DomainDBM for the relational
	// difference-bound zones.
	RGDomain string
	// RGPrefilter runs the engine's cheap pre-filter before each proof
	// attempt; skipped pairs never enter the fixpoint and are flagged on
	// RunResult.RGSkippedPrefilter. Skips never lose proofs on domain-
	// expressible assertions (enforced by the corpus precision test).
	RGPrefilter bool
	// MHB runs the encoder's must-happens-before closure engine
	// (encode.Options.MHB): forced rf edges are fixed at decision level 0,
	// their must-fr consequences derived, and contradicted interference
	// candidates elided. Fresh mode only — the incremental delta encoder
	// forces it off (edge fixing is not bound-monotone).
	MHB bool
	// Incremental solves each (benchmark, model, strategy) group's bounds
	// as one unroll sweep on a single live solver (internal/incremental):
	// the encoding grows by deltas under per-bound activation literals and
	// learned clauses carry over between bounds. Verdicts are identical to
	// fresh mode; per-run Stats hold the bound's counter increments, with
	// sweep totals in RunResult.Cumulative. Unsat verdicts cannot be
	// proof-checked incrementally (CheckVerdicts marks them CheckSkipped);
	// TraceDir is not supported in this mode.
	Incremental bool
	// Chrome, when non-nil, collects one hierarchical span trace per run
	// (rg prove, unroll, encode with static/dataflow children, solve with
	// the BCP/theory/analyze/reduce split). Export the collection with
	// obs.WriteChrome for a Perfetto-loadable flame view of the whole
	// evaluation.
	Chrome *obs.Collector
	// Board, when non-nil, receives live run-state transitions
	// (queued → running at a bound → done with verdict and stop reason)
	// for the /runs HTTP surface.
	Board *obs.RunBoard
	// Logger, when non-nil, receives structured slog records for run
	// lifecycle events, each carrying the stable run id.
	Logger *slog.Logger

	// rgMemo caches the rely-guarantee result per (benchmark, model) so the
	// many (bound, strategy) runs of one pair share a single analysis. Set
	// by fill(); shared across workers via the pointer.
	rgMemo *rgMemo
}

// rgMemo is the per-sweep rely-guarantee result cache.
type rgMemo struct {
	mu sync.Mutex
	m  map[string]*rg.Result
	// hist, when non-nil, receives the engine's prove latency per cache
	// miss (the "rg_prove_us" registry histogram).
	hist *telemetry.Histogram
	// domain and prefilter mirror Config.RGDomain / Config.RGPrefilter.
	domain    string
	prefilter bool
}

// get returns the (cached) engine result for one (benchmark, model) pair. A
// program the engine rejects outright counts as unproven with no ranges.
func (c *rgMemo) get(b svcomp.Benchmark, model memmodel.Model, width int) *rg.Result {
	key := b.Subcategory + "/" + b.Name + "@" + model.String()
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.m[key]; ok {
		return r
	}
	start := time.Now()
	r, err := rg.Prove(b.Program, rg.Options{
		Model: model, Width: width, Domain: c.domain, Prefilter: c.prefilter,
	})
	if err != nil {
		r = &rg.Result{}
	}
	if c.hist != nil {
		c.hist.ObserveDuration(time.Since(start))
	}
	c.m[key] = r
	return r
}

// TraceFileName is the per-run trace file name under Config.TraceDir.
func TraceFileName(t Task, s core.Strategy) string {
	id := fmt.Sprintf("%s_%s_%s_k%d_%s", t.Bench.Subcategory, t.Bench.Name, t.Model, t.Bound, s)
	id = strings.Map(func(r rune) rune {
		switch r {
		case '/', '@', ' ':
			return '_'
		}
		return r
	}, id)
	return id + ".trace.jsonl"
}

func (c *Config) fill() {
	if len(c.Models) == 0 {
		c.Models = memmodel.All()
	}
	if len(c.Strategies) == 0 {
		c.Strategies = []core.Strategy{core.Baseline, core.ZPREMinus, core.ZPRE}
	}
	if len(c.Bounds) == 0 {
		c.Bounds = []int{1, 2, 3}
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Width == 0 {
		c.Width = 8
	}
	if c.CheckLearntCap == 0 {
		c.CheckLearntCap = 4000
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 16
	}
	if c.RG && c.rgMemo == nil {
		c.rgMemo = &rgMemo{m: map[string]*rg.Result{}, domain: c.RGDomain, prefilter: c.RGPrefilter}
		if c.Metrics != nil {
			c.rgMemo.hist = c.Metrics.Histogram("rg_prove_us")
		}
	}
}

// Tasks expands the corpus into the task list: programs × models × bounds,
// with loop-free programs contributing a single bound (the paper's
// deduplication of identical SMT files).
func Tasks(cfg Config) []Task {
	cfg.fill()
	var benches []svcomp.Benchmark
	if len(cfg.Subcategories) == 0 {
		benches = svcomp.All()
	} else {
		for _, sub := range cfg.Subcategories {
			benches = append(benches, svcomp.BySubcategory(sub)...)
		}
	}
	var tasks []Task
	for _, b := range benches {
		bounds := cfg.Bounds
		if !b.Program.HasLoops() {
			bounds = cfg.Bounds[:1]
		}
		for _, mm := range cfg.Models {
			for _, k := range bounds {
				tasks = append(tasks, Task{Bench: b, Model: mm, Bound: k})
			}
		}
	}
	return tasks
}

// Results holds every run of an evaluation.
type Results struct {
	Config Config
	Runs   []RunResult
}

// recorder serialises result writes from the workers: it fills res.Runs,
// maintains the failure-class metrics and drives the checkpoint cadence.
// A single mutex covers result slots, progress output and checkpoint writes,
// so a checkpoint never observes a half-written slot.
type recorder struct {
	mu        sync.Mutex
	res       *Results
	cfg       *Config
	done      []bool
	recorded  int
	sinceCkpt int
}

func newRecorder(res *Results, cfg *Config) *recorder {
	return &recorder{res: res, cfg: cfg, done: make([]bool, len(res.Runs))}
}

// record stores one finished (or restored, or cancelled) run.
func (rc *recorder) record(idx int, r RunResult) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.res.Runs[idx] = r
	rc.done[idx] = true
	rc.recorded++
	id := RunID(r.Task, r.Strategy)
	rc.cfg.Board.Done(id, r.Status.String(), r.Stop.String())
	if lg := obs.ForRun(rc.cfg.Logger, id); lg != nil {
		attrs := []any{
			"status", r.Status.String(),
			"solve_sec", r.Solve.Seconds(),
			"decisions", r.Stats.Decisions,
			"conflicts", r.Stats.Conflicts,
		}
		if r.Resumed {
			attrs = append(attrs, "resumed", true)
		}
		if r.RGProved {
			attrs = append(attrs, "rg_proved", true)
		}
		if f := r.Failure(); f != sat.FailNone {
			attrs = append(attrs, "failure", f.String())
		}
		if r.Err != nil {
			attrs = append(attrs, "error", r.Err.Error())
		}
		lg.Info("run done", attrs...)
	}
	if m := rc.cfg.Metrics; m != nil && !r.Resumed && !r.RGProved && r.Err == nil {
		// Per-phase latency and per-run search-work distributions. Labels
		// use bounded dimensions only (phase names), never run ids — the
		// run id joins signals through the board, logs and traces instead.
		phaseHist(m, "unroll").ObserveDuration(r.Unroll)
		phaseHist(m, "encode").ObserveDuration(r.Encode)
		phaseHist(m, "solve").ObserveDuration(r.Solve)
		m.Histogram("run_decisions").Observe(r.Stats.Decisions)
		m.Histogram("run_conflicts").Observe(r.Stats.Conflicts)
	}
	if m := rc.cfg.Metrics; m != nil {
		if r.Completed {
			m.Counter("runs_done").Inc()
		}
		if r.Resumed {
			m.Counter("runs_resumed").Inc()
		}
		switch r.Failure() {
		case sat.FailPanic:
			m.Counter("tasks_panicked").Inc()
		case sat.FailCancelled:
			m.Counter("tasks_cancelled").Inc()
		case sat.FailMemout:
			m.Counter("tasks_memout").Inc()
		case sat.FailError:
			m.Counter("tasks_errored").Inc()
		}
		if r.RGProved {
			m.Counter("rg_proved").Inc()
		}
		if r.RGSkippedPrefilter {
			m.Counter("rg_skipped_prefilter").Inc()
		}
		if !r.Incremental {
			// Incremental bounds carry cumulative stats; their sweeps are
			// counted once, at the end of runSweepGroup.
			addDataflowCounters(m, r.VC)
		}
	}
	if rc.cfg.Progress != nil {
		note := ""
		switch {
		case r.Resumed:
			note = " (resumed)"
		case r.Failure() == sat.FailCancelled:
			note = " (cancelled)"
		case r.Failure() != sat.FailNone:
			note = " (" + r.Failure().String() + ")"
		}
		fmt.Fprintf(rc.cfg.Progress, "[%d/%d] %s %s%s\n",
			rc.recorded, len(rc.res.Runs), r.Task.ID(), r.Strategy, note)
	}
	if rc.cfg.CheckpointPath != "" && !r.Resumed {
		rc.sinceCkpt++
		if rc.sinceCkpt >= rc.cfg.CheckpointEvery {
			rc.checkpointLocked()
		}
	}
}

// phaseHist returns the registry's per-phase latency histogram
// (phase_latency_us labeled by phase).
func phaseHist(m *telemetry.Registry, phase string) *telemetry.Histogram {
	return m.Histogram(obs.Labels("phase_latency_us", map[string]string{"phase": phase}))
}

// addDataflowCounters folds one run's value-flow encoder stats into the
// registry. Fresh runs add theirs in record(); incremental sweeps add only
// the final bound's cumulative stats (runSweepGroup), so nothing is counted
// twice.
func addDataflowCounters(m *telemetry.Registry, vc encode.Stats) {
	if vc.ValuePruned > 0 {
		m.Counter("dataflow_value_pruned").Add(uint64(vc.ValuePruned))
	}
	if vc.FoldedAssigns > 0 {
		m.Counter("dataflow_folded_assigns").Add(uint64(vc.FoldedAssigns))
	}
	if vc.FixedHB > 0 {
		m.Counter("dataflow_fixed_hb").Add(uint64(vc.FixedHB))
	}
	if vc.RelPruned > 0 {
		m.Counter("dataflow_rel_pruned").Add(uint64(vc.RelPruned))
	}
	if vc.MHBFixedRF > 0 {
		m.Counter("mhb_fixed_rf").Add(uint64(vc.MHBFixedRF))
	}
	if vc.MHBFixedFR > 0 {
		m.Counter("mhb_fixed_fr").Add(uint64(vc.MHBFixedFR))
	}
	if vc.MHBPruned > 0 {
		m.Counter("mhb_pruned").Add(uint64(vc.MHBPruned))
	}
	if vc.RGInvariants > 0 {
		m.Counter("rg_invariants").Add(uint64(vc.RGInvariants))
	}
}

// flush forces a final checkpoint covering everything recorded so far.
func (rc *recorder) flush() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.cfg.CheckpointPath != "" && rc.sinceCkpt > 0 {
		rc.checkpointLocked()
	}
}

func (rc *recorder) checkpointLocked() {
	rc.sinceCkpt = 0
	if err := SaveCheckpoint(rc.cfg.CheckpointPath, rc.res, rc.done); err != nil {
		if rc.cfg.Progress != nil {
			fmt.Fprintf(rc.cfg.Progress, "checkpoint write failed: %v\n", err)
		}
		return
	}
	if rc.cfg.Metrics != nil {
		rc.cfg.Metrics.Counter("checkpoints_written").Inc()
	}
}

// Run executes the full evaluation: every task is encoded once per strategy
// (deterministic encoding yields the identical instance, mirroring the
// paper's shared SMT files) and solved; solving time excludes encoding, as
// the paper measures backend time only. With cfg.Parallel > 1, tasks are
// distributed over a worker pool; results come back in deterministic order
// regardless of completion order.
//
// Failures never abort the sweep: panics are contained per run, budget and
// memory exhaustion classify the single task, and cancelling cfg.Context
// drains the workers and returns partial results (checkpointed when
// cfg.CheckpointPath is set). Runs found completed in cfg.Resume are
// restored instead of executed.
func Run(cfg Config) *Results {
	cfg.fill()
	res := &Results{Config: cfg}
	tasks := Tasks(cfg)
	workers := cfg.Parallel
	if workers <= 0 {
		workers = 1
	}
	var mkdirErr error
	if cfg.TraceDir != "" {
		if mkdirErr = os.MkdirAll(cfg.TraceDir, 0o755); mkdirErr != nil {
			cfg.TraceDir = ""
		}
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Gauge("runs_total").Set(int64(len(tasks) * len(cfg.Strategies)))
	}
	if cfg.Board != nil {
		// Register every run up front so /runs shows the whole evaluation
		// from the first scrape, queued runs included.
		for _, task := range tasks {
			for _, strat := range cfg.Strategies {
				cfg.Board.Queue(RunID(task, strat))
			}
		}
	}

	type job struct {
		taskIdx  int
		stratIdx int
	}
	nStrat := len(cfg.Strategies)
	res.Runs = make([]RunResult, len(tasks)*nStrat)
	if mkdirErr != nil {
		// Surface the trace-dir failure on every run rather than silently
		// dropping traces.
		for i := range res.Runs {
			res.Runs[i].Err = mkdirErr
		}
		return res
	}

	rec := newRecorder(res, &cfg)
	defer rec.flush()
	resume := resumeIndex(cfg.Resume)

	if cfg.Incremental {
		runIncrementalSweeps(cfg, tasks, rec, resume, workers)
		return res
	}

	if workers == 1 {
		for i, task := range tasks {
			for si, strat := range cfg.Strategies {
				idx := i*nStrat + si
				if jr, ok := resume[resumeKey(task.ID(), strat.String())]; ok {
					rec.record(idx, resumedResult(task, strat, jr))
					continue
				}
				rec.record(idx, RunOne(task, strat, cfg))
			}
		}
		return res
	}

	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				idx := j.taskIdx*nStrat + j.stratIdx
				rec.record(idx, RunOne(tasks[j.taskIdx], cfg.Strategies[j.stratIdx], cfg))
			}
		}()
	}
	for ti, task := range tasks {
		for si, strat := range cfg.Strategies {
			if jr, ok := resume[resumeKey(task.ID(), strat.String())]; ok {
				rec.record(ti*nStrat+si, resumedResult(task, strat, jr))
				continue
			}
			jobs <- job{taskIdx: ti, stratIdx: si}
		}
	}
	close(jobs)
	wg.Wait()
	return res
}

// RunParallel is Run with one worker per CPU: maximal throughput for
// verdict/counter sweeps where per-task wall-clock timing fidelity is not
// needed.
func RunParallel(cfg Config) *Results {
	cfg.Parallel = runtime.NumCPU()
	return Run(cfg)
}

// RunOne encodes and solves a single task with one strategy. Panics anywhere
// in the pipeline (unrolling, encoding, search, verdict checking) are
// contained and classified as FailPanic on the returned result, so one
// pathological instance fails one run, not the process.
func RunOne(task Task, strat core.Strategy, cfg Config) (out RunResult) {
	cfg.fill()
	out = RunResult{Task: task, Strategy: strat}
	id := RunID(task, strat)
	cfg.Board.Running(id, task.Bound)
	if lg := obs.ForRun(cfg.Logger, id); lg != nil {
		lg.Info("run start", "bound", task.Bound, "strategy", strat.String(), "model", task.Model.String())
	}
	// The span trace backs both the Chrome export and the v2 JSONL span
	// records; when neither consumer is configured it stays nil and every
	// span call below is a single-branch no-op.
	var tr *obs.Trace
	var trRoot int
	if cfg.Chrome != nil || cfg.TraceDir != "" {
		tr = obs.NewTrace(id)
		trRoot = tr.Start("run")
	}
	var sink *telemetry.JSONLSink
	defer func() {
		if r := recover(); r != nil {
			out.Status = sat.Unknown
			out.Err = &sat.StatusError{
				Kind: sat.FailPanic,
				Err:  fmt.Errorf("panic: %v\n%s", r, debug.Stack()),
			}
			if sink != nil {
				sink.Close() // best effort: the trace ends mid-stream
			}
		}
		// Every outcome is terminal except cancellation: a cancelled run is
		// the one class `-resume` re-executes.
		out.Completed = out.Failure() != sat.FailCancelled
		tr.End(trRoot)
		cfg.Chrome.Add(tr)
	}()
	if cfg.Context != nil && cfg.Context.Err() != nil {
		out.Status = sat.Unknown
		out.Stop = sat.StopCancelled
		return out
	}

	var rgRanges map[string]dataflow.Interval
	if cfg.RG {
		rgSpan := tr.Start("rg.prove")
		res := cfg.rgMemo.get(task.Bench, task.Model, cfg.Width)
		tr.End(rgSpan)
		out.RGStabilizeIters = res.StabilizeIters
		out.RGSkippedPrefilter = res.SkippedPrefilter
		if res.Proved {
			// Safe at every bound: nothing to encode or solve. No proof
			// trace exists for the checker, so CheckVerdicts marks the run
			// skipped rather than checked.
			out.Status = sat.Unsat
			out.RGProved = true
			out.CheckSkipped = cfg.CheckVerdicts
			return out
		}
		rgRanges = res.Ranges
	}

	unrollSpan := tr.Start("unroll")
	unrollStart := time.Now()
	unrolled := cprog.Unroll(task.Bench.Program, task.Bound, cprog.UnwindAssume)
	out.Unroll = time.Since(unrollStart)
	tr.End(unrollSpan)
	encSpan := tr.Start("encode")
	encStart := time.Now()
	vc, err := encode.Program(unrolled, encode.Options{
		Model:       task.Model,
		Width:       cfg.Width,
		WithProof:   cfg.CheckVerdicts,
		StaticPrune: cfg.StaticPrune,
		Dataflow:    cfg.Dataflow,
		MHB:         cfg.MHB,
		RGRanges:    rgRanges,
	})
	out.Encode = time.Since(encStart)
	tr.End(encSpan)
	if err != nil {
		out.Err = err
		return out
	}
	out.VC = vc.Stats
	// The encoder's pre-analysis shares are measured sub-phases: lay them
	// out as children of the encode span.
	if cfg.StaticPrune {
		tr.AddChild(encSpan, "encode.static", vc.Stats.StaticTime)
	}
	if cfg.Dataflow {
		tr.AddChild(encSpan, "encode.dataflow", vc.Stats.DataflowTime)
	}

	infos := core.Classify(vc.Builder.NamedVars())
	deciderCfg := core.Config{Seed: cfg.Seed}
	if st, ordered := vc.Static, vc.MHBOrdered; st != nil || ordered != nil {
		deciderCfg.Score = func(vi core.VarInfo) int {
			// Must-ordered pairs are forced by unit propagation from the
			// closure's level-0 fixed edges: decide them last.
			if ordered != nil && ordered(vi.ReadThread, vi.ReadIdx, vi.WriteThread, vi.WriteIdx) {
				return -1
			}
			if st == nil {
				return 0
			}
			return st.PairScore(vi.ReadThread, vi.ReadIdx, vi.WriteThread, vi.WriteIdx)
		}
	}
	dec := core.NewDecider(strat, infos, deciderCfg)
	var decider sat.Decider
	if dec != nil {
		decider = dec
	}

	// Observability: a private trace sink per run (workers never share
	// one), live metrics aggregated across workers via atomic counters.
	var tracer *telemetry.SolverTracer
	if cfg.TraceDir != "" {
		sink, err = telemetry.NewFileSink(filepath.Join(cfg.TraceDir, TraceFileName(task, strat)))
		if err != nil {
			out.Err = err
			return out
		}
		tracer = telemetry.NewSolverTracer(sink, telemetry.TracerOptions{
			Classes:  core.ClassNames(infos),
			Task:     task.ID(),
			Strategy: strat.String(),
			Model:    task.Model.String(),
			Every:    cfg.TraceEvery,
			RunID:    id,
		})
	}
	var metrics *telemetry.MetricsTracer
	if cfg.Metrics != nil {
		metrics = telemetry.NewMetricsTracer(cfg.Metrics)
	}
	var satTracer sat.Tracer
	if tracer != nil || metrics != nil {
		satTracer = telemetry.Combine(traceOrNil(tracer), metricsOrNil(metrics))
	}

	opts := smt.Options{
		Decider:        decider,
		MaxConflicts:   cfg.MaxConflicts,
		MaxDecisions:   cfg.MaxDecisions,
		MaxMemoryBytes: cfg.MaxMemoryBytes,
		Context:        cfg.Context,
		Tracer:         satTracer,
		TimePhases:     cfg.TimePhases || tracer != nil || tr != nil,
	}
	if cfg.Faults != nil {
		label := task.ID() + "/" + strat.String()
		opts.Tracer = cfg.Faults.Tracer(label, opts.Tracer)
		opts.WrapTheory = func(th sat.Theory) sat.Theory {
			return cfg.Faults.Theory(label, th)
		}
	}
	if cfg.Timeout > 0 {
		opts.Deadline = time.Now().Add(cfg.Timeout)
	}
	if cfg.Metrics != nil {
		running := cfg.Metrics.Gauge("solves_running")
		running.Add(1)
		defer running.Add(-1)
	}
	solveSpan := tr.Start("solve")
	r, err := vc.Builder.Solve(opts)
	if metrics != nil {
		metrics.Flush()
	}
	tr.End(solveSpan)
	if err != nil {
		if tracer != nil {
			sink.Close()
		}
		out.Err = err
		return out
	}
	out.Status = r.Status
	out.Stop = r.Stop
	out.Solve = r.Elapsed
	out.Stats = r.Stats
	out.Timings = r.Timings
	out.OrderStats = r.OrderStats
	// The in-solve phase split comes from the solver's own timers, so the
	// solve span's children sum exactly to sat.SearchTimings.
	tr.AddChild(solveSpan, "solve.bcp", r.Timings.BCP)
	tr.AddChild(solveSpan, "solve.theory", r.Timings.Theory)
	tr.AddChild(solveSpan, "solve.analyze", r.Timings.Analyze)
	tr.AddChild(solveSpan, "solve.reduce", r.Timings.Reduce)
	tr.AddChild(solveSpan, "solve.inprocess", r.Timings.Inprocess)
	if cfg.CheckVerdicts {
		checkSpan := tr.Start("check")
		checkVerdict(&out, vc, cfg)
		tr.End(checkSpan)
	}
	if tracer != nil {
		// Close the root now so the JSONL trace carries the complete span
		// tree (the deferred End is then a no-op).
		tr.End(trRoot)
		for _, sp := range tr.Spans() {
			tracer.SpanAt(sp.Name, sp.ID, sp.Parent, sp.Start, sp.Dur)
		}
		if cerr := tracer.Close(r.StatsDelta); cerr != nil && out.Err == nil {
			out.Err = cerr
		}
		if cerr := sink.Close(); cerr != nil && out.Err == nil {
			out.Err = cerr
		}
	}
	return out
}

// traceOrNil avoids a typed-nil sat.Tracer interface from a nil *SolverTracer.
func traceOrNil(t *telemetry.SolverTracer) sat.Tracer {
	if t == nil {
		return nil
	}
	return t
}

// metricsOrNil avoids a typed-nil sat.Tracer interface from a nil *MetricsTracer.
func metricsOrNil(m *telemetry.MetricsTracer) sat.Tracer {
	if m == nil {
		return nil
	}
	return m
}

// checkVerdict validates the run's answer independently of the solver.
func checkVerdict(out *RunResult, vc *encode.VC, cfg Config) {
	switch out.Status {
	case sat.Unsat:
		_, learnts, _, _ := vc.Proof.Stats()
		if learnts > cfg.CheckLearntCap {
			out.CheckSkipped = true
			return
		}
		if err := vc.Builder.CheckProof(vc.Proof); err != nil {
			out.CheckErr = err
			return
		}
		out.Checked = true
	case sat.Sat:
		steps, err := witness.Extract(vc)
		if err == nil {
			err = witness.Validate(steps)
		}
		if err != nil {
			out.CheckErr = err
			return
		}
		out.Checked = true
	}
}

// byTask groups runs per task id and strategy.
func (r *Results) byTask() map[string]map[core.Strategy]RunResult {
	out := map[string]map[core.Strategy]RunResult{}
	for _, run := range r.Runs {
		id := run.Task.ID()
		if out[id] == nil {
			out[id] = map[core.Strategy]RunResult{}
		}
		out[id][run.Strategy] = run
	}
	return out
}
