package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"zpre/internal/core"
	"zpre/internal/sat"
)

// SaveCheckpoint atomically writes the runs recorded so far (done[i] true)
// as a JSON export: the document is written to a temp file in the target
// directory and renamed over path, so a crash or signal mid-write never
// leaves a truncated checkpoint. A nil done saves every run.
func SaveCheckpoint(path string, res *Results, done []bool) error {
	doc := JSONResults{
		TimeoutSec:  res.Config.Timeout.Seconds(),
		Width:       res.Config.Width,
		StaticPrune: res.Config.StaticPrune,
		Dataflow:    res.Config.Dataflow,
		Bounds:      res.Config.Bounds,
	}
	for _, m := range res.Config.Models {
		doc.Models = append(doc.Models, m.String())
	}
	for _, s := range res.Config.Strategies {
		doc.Strategies = append(doc.Strategies, s.String())
	}
	for i, run := range res.Runs {
		if done != nil && !done[i] {
			continue
		}
		doc.Runs = append(doc.Runs, jsonRun(run))
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ErrCorrupt marks a checkpoint file that exists but cannot be decoded — a
// torn write from a crash mid-save (only possible when the atomic tmp+rename
// was bypassed, e.g. by copying a file around), manual truncation, or plain
// garbage. Callers should treat it as "no checkpoint" (log and start fresh)
// rather than failing the run: errors.Is(err, ErrCorrupt) distinguishes it
// from I/O errors, which may be transient and are worth retrying.
var ErrCorrupt = errors.New("corrupt checkpoint")

// LoadCheckpoint reads a JSON export (full or checkpointed) for use as
// Config.Resume. A file that cannot be parsed — truncated, torn, or not
// JSON — returns an error wrapping ErrCorrupt so the caller can recover by
// starting fresh instead of aborting.
func LoadCheckpoint(path string) (*JSONResults, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc JSONResults
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w: %v", path, ErrCorrupt, err)
	}
	return &doc, nil
}

// LoadCheckpointLenient is LoadCheckpoint for resume paths that must not die
// on a damaged file: a corrupt (truncated/torn/garbage) checkpoint logs a
// warning to warn and returns (nil, nil) — start fresh, re-running
// everything — instead of failing the run. Missing files and other I/O
// errors are still returned, since a mistyped -resume path should fail loud
// and a transient read error is worth retrying.
func LoadCheckpointLenient(path string, warn io.Writer) (*JSONResults, error) {
	doc, err := LoadCheckpoint(path)
	if errors.Is(err, ErrCorrupt) {
		if warn != nil {
			fmt.Fprintf(warn, "checkpoint %s is corrupt (%v); starting fresh\n", path, err)
		}
		return nil, nil
	}
	return doc, err
}

// resumeKey identifies a (task, strategy) pair across sweeps.
func resumeKey(taskID, strategy string) string { return taskID + "\x00" + strategy }

// resumeIndex maps completed prior runs by (task, strategy). Cancelled
// (incomplete) entries are deliberately excluded: those are the runs a
// resumed sweep must execute.
func resumeIndex(prev *JSONResults) map[string]JSONRun {
	if prev == nil {
		return nil
	}
	idx := make(map[string]JSONRun, len(prev.Runs))
	for _, jr := range prev.Runs {
		if !jr.Completed {
			continue
		}
		idx[resumeKey(jr.Task, jr.Strategy)] = jr
	}
	return idx
}

// resumedResult reconstructs a RunResult from its checkpointed export form.
// Timings and counters round-trip through the JSON fields; the error chain
// is rebuilt as a StatusError so failure classification survives the resume.
func resumedResult(task Task, strat core.Strategy, jr JSONRun) RunResult {
	out := RunResult{
		Task:         task,
		Strategy:     strat,
		Status:       parseStatus(jr.Status),
		Stop:         parseStopReason(jr.StopReason),
		Solve:        secDur(jr.SolveSec),
		Encode:       secDur(jr.EncodeSec),
		Unroll:       secDur(jr.UnrollSec),
		Checked:      jr.Checked,
		CheckSkipped: jr.CheckSkipped,
		Completed:    true,
		Resumed:      true,
	}
	out.Incremental = jr.Incremental
	out.CumulativeSolve = secDur(jr.CumulativeSolveSec)
	out.Cumulative.Decisions = jr.CumDecisions
	out.Cumulative.Conflicts = jr.CumConflicts
	out.Timings.BCP = secDur(jr.BCPSec)
	out.Timings.Theory = secDur(jr.TheorySec)
	out.Timings.Analyze = secDur(jr.AnalyzeSec)
	out.Timings.Reduce = secDur(jr.ReduceSec)
	out.Timings.Inprocess = secDur(jr.InprocessSec)
	out.Stats.Decisions = jr.Decisions
	out.Stats.Propagations = jr.Propagations
	out.Stats.TheoryProps = jr.TheoryProps
	out.Stats.Conflicts = jr.Conflicts
	out.Stats.TheoryConfl = jr.TheoryConfl
	out.Stats.Restarts = jr.Restarts
	out.Stats.LearntClauses = jr.LearntClauses
	out.Stats.DeletedCls = jr.DeletedCls
	out.Stats.MaxTrail = jr.MaxTrail
	out.Stats.BlockerHits = jr.BlockerHits
	out.Stats.TierDemotions = jr.TierDemotions
	out.Stats.ChronoBTs = jr.ChronoBTs
	out.Stats.Inprocessings = jr.Inprocessings
	out.Stats.SubsumedCls = jr.SubsumedCls
	out.Stats.StrengthenedCls = jr.StrengthenedCls
	out.Stats.EliminatedVars = jr.EliminatedVars
	out.OrderStats.Asserts = jr.OrderAsserts
	out.OrderStats.Conflicts = jr.OrderConflicts
	out.OrderStats.PathQueries = jr.OrderPathQueries
	out.OrderStats.Propagations = jr.OrderProps
	out.VC.RFVars = jr.RFVars
	out.VC.WSVars = jr.WSVars
	out.VC.RFPruned = jr.RFPruned
	out.VC.WSPruned = jr.WSPruned
	out.VC.ValuePruned = jr.ValuePruned
	out.VC.RelPruned = jr.RelPruned
	out.VC.FoldedAssigns = jr.FoldedAssigns
	out.VC.FixedHB = jr.FixedHB
	out.VC.MHBFixedRF = jr.MHBFixedRF
	out.VC.MHBFixedFR = jr.MHBFixedFR
	out.VC.MHBPruned = jr.MHBPruned
	out.VC.RGInvariants = jr.RGInvariants
	out.RGProved = jr.RGProved
	out.RGStabilizeIters = jr.RGStabilizeIters
	out.RGSkippedPrefilter = jr.RGSkippedPrefilter
	if jr.Error != "" {
		kind := parseFailureKind(jr.Failure)
		if kind == sat.FailNone || kind == sat.FailTimeout {
			out.Err = errors.New(jr.Error)
		} else {
			out.Err = &sat.StatusError{Kind: kind, Err: errors.New(jr.Error)}
		}
	}
	return out
}

func secDur(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func parseStatus(s string) sat.Status {
	switch s {
	case "sat":
		return sat.Sat
	case "unsat":
		return sat.Unsat
	}
	return sat.Unknown
}

func parseStopReason(s string) sat.StopReason {
	for r := sat.StopNone; r <= sat.StopCancelled; r++ {
		if r.String() == s {
			return r
		}
	}
	return sat.StopNone
}

func parseFailureKind(s string) sat.FailureKind {
	for k := sat.FailNone; k <= sat.FailError; k++ {
		if k.String() == s {
			return k
		}
	}
	return sat.FailNone
}
