// Package lint holds the repo's custom static checks. The one check so far,
// CheckMapRange, flags `for range` loops over map-typed values: the encoder
// and the analyses promise deterministic output (variable naming, golden
// files, reproducible evaluations), and Go's randomised map iteration order
// is the classic way that promise silently breaks. Loops whose order
// provably cannot leak into output are annotated at the loop with a
// `//mapiter:ok <reason>` comment, which suppresses the diagnostic.
//
// The check runs standalone (unit tests) and as a `go vet -vettool`
// via cmd/mapiterlint.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Finding is one diagnostic: a map-ordered range loop without a
// justification comment.
type Finding struct {
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s", f.Pos, f.Message)
}

// okDirective is the annotation that marks a map-range loop as reviewed:
// placed on the line of the `for`, or on the line directly above it.
const okDirective = "mapiter:ok"

// CheckMapRange reports every `for ... range m` where m is map-typed and
// the loop is not annotated with //mapiter:ok. info must carry Types for
// the files' expressions (a completed types.Check over the same fset).
func CheckMapRange(fset *token.FileSet, files []*ast.File, info *types.Info) []Finding {
	var out []Finding
	for _, file := range files {
		okLines := directiveLines(fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pos := fset.Position(rs.For)
			if okLines[pos.Line] || okLines[pos.Line-1] {
				return true
			}
			out = append(out, Finding{
				Pos: pos,
				Message: fmt.Sprintf(
					"non-deterministic iteration over map %s: sort the keys first, or annotate the loop with //mapiter:ok <reason> if the order cannot reach any output",
					types.ExprString(rs.X)),
			})
			return true
		})
	}
	return out
}

// directiveLines collects the line numbers carrying a mapiter:ok comment
// (any comment group whose text mentions the directive marks every line
// the group spans).
func directiveLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		has := false
		for _, c := range cg.List {
			if containsDirective(c.Text) {
				has = true
				break
			}
		}
		if !has {
			continue
		}
		start := fset.Position(cg.Pos()).Line
		end := fset.Position(cg.End()).Line
		for l := start; l <= end; l++ {
			lines[l] = true
		}
	}
	return lines
}

func containsDirective(text string) bool {
	for i := 0; i+len(okDirective) <= len(text); i++ {
		if text[i:i+len(okDirective)] == okDirective {
			return true
		}
	}
	return false
}
