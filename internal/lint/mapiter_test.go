package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// check typechecks one self-contained source snippet and runs the map-range
// check over it.
func check(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	conf := types.Config{}
	if _, err := conf.Check("x", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return CheckMapRange(fset, []*ast.File{file}, info)
}

func TestFlagsBareMapRange(t *testing.T) {
	got := check(t, `package x
func f(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
`)
	if len(got) != 1 {
		t.Fatalf("findings = %v, want exactly one", got)
	}
	if got[0].Pos.Line != 4 {
		t.Fatalf("line = %d, want 4", got[0].Pos.Line)
	}
	if !strings.Contains(got[0].Message, "non-deterministic") {
		t.Fatalf("message: %s", got[0].Message)
	}
}

func TestNamedMapTypeStillFlagged(t *testing.T) {
	got := check(t, `package x
type set map[int]bool
func f(s set) {
	for k := range s {
		_ = k
	}
}
`)
	if len(got) != 1 {
		t.Fatalf("findings = %v, want one (named map types count)", got)
	}
}

func TestDirectiveSuppresses(t *testing.T) {
	got := check(t, `package x
func f(m map[string]int) int {
	s := 0
	//mapiter:ok order-independent sum
	for _, v := range m {
		s += v
	}
	for _, v := range m { //mapiter:ok same-line form
		s += v
	}
	return s
}
`)
	if len(got) != 0 {
		t.Fatalf("findings = %v, want none (both loops annotated)", got)
	}
}

func TestDirectiveDoesNotLeakToOtherLoops(t *testing.T) {
	got := check(t, `package x
func f(m map[string]int) int {
	s := 0
	//mapiter:ok first loop only
	for _, v := range m {
		s += v
	}
	for _, v := range m {
		s += v
	}
	return s
}
`)
	if len(got) != 1 {
		t.Fatalf("findings = %v, want one (second loop unannotated)", got)
	}
}

func TestSliceAndChannelRangesIgnored(t *testing.T) {
	got := check(t, `package x
func f(xs []int, ch chan int, s string) int {
	n := 0
	for _, v := range xs {
		n += v
	}
	for v := range ch {
		n += v
	}
	for range s {
		n++
	}
	for i := range 10 {
		n += i
	}
	return n
}
`)
	if len(got) != 0 {
		t.Fatalf("findings = %v, want none for non-map ranges", got)
	}
}
