package interp

import (
	"testing"

	"zpre/internal/cprog"
	"zpre/internal/memmodel"
)

// TestTSOBufferIsFIFO: under TSO the two stores of one thread hit memory in
// order, so an observer that sees the second must see the first (MP with a
// same-thread observer pair): safe. Under PSO the per-variable buffers break
// the FIFO property: unsafe.
func TestTSOBufferIsFIFO(t *testing.T) {
	p := &cprog.Program{
		Name:   "fifo",
		Shared: []cprog.SharedDecl{{Name: "x"}, {Name: "y"}, {Name: "bad"}},
		Threads: []*cprog.Thread{
			{Name: "w", Body: []cprog.Stmt{
				cprog.Set("x", cprog.C(1)),
				cprog.Set("y", cprog.C(1)),
			}},
			{Name: "r", Body: []cprog.Stmt{
				cprog.If{
					Cond: cprog.Eq(cprog.V("y"), cprog.C(1)),
					Then: []cprog.Stmt{cprog.If{
						Cond: cprog.Eq(cprog.V("x"), cprog.C(0)),
						Then: []cprog.Stmt{cprog.Set("bad", cprog.C(1))},
					}},
				},
			}},
		},
		Post: []cprog.Stmt{cprog.Assert{Cond: cprog.Eq(cprog.V("bad"), cprog.C(0))}},
	}
	if run(t, p, memmodel.TSO, 1) != Safe {
		t.Error("TSO buffer must drain in FIFO order")
	}
	if run(t, p, memmodel.PSO, 1) != Unsafe {
		t.Error("PSO per-variable buffers must break global FIFO")
	}
}

// TestPSOPerVariableFIFO: even under PSO, two stores to the SAME variable
// drain in order (coherence).
func TestPSOPerVariableFIFO(t *testing.T) {
	p := &cprog.Program{
		Name:   "pvfifo",
		Shared: []cprog.SharedDecl{{Name: "x"}, {Name: "r1"}, {Name: "r2"}},
		Threads: []*cprog.Thread{
			{Name: "w", Body: []cprog.Stmt{
				cprog.Set("x", cprog.C(1)),
				cprog.Set("x", cprog.C(2)),
			}},
			{Name: "r", Body: []cprog.Stmt{
				cprog.Set("r1", cprog.V("x")),
				cprog.Set("r2", cprog.V("x")),
			}},
		},
		// Never observe 2 then 1.
		Post: []cprog.Stmt{cprog.Assert{Cond: cprog.LNot(cprog.LAnd(
			cprog.Eq(cprog.V("r1"), cprog.C(2)),
			cprog.Eq(cprog.V("r2"), cprog.C(1))))}},
	}
	for _, mm := range memmodel.All() {
		if run(t, p, mm, 1) != Safe {
			t.Errorf("%v: same-variable stores must stay ordered", mm)
		}
	}
}

// TestSameAddressLoadStalls: the no-forwarding machine makes a same-address
// read wait for the pending store, so a thread always sees its own latest
// write — under every model.
func TestSameAddressLoadStalls(t *testing.T) {
	p := &cprog.Program{
		Name:   "stall",
		Shared: []cprog.SharedDecl{{Name: "x"}, {Name: "r"}},
		Threads: []*cprog.Thread{
			{Name: "t", Body: []cprog.Stmt{
				cprog.Set("x", cprog.C(1)),
				cprog.Set("r", cprog.V("x")),
			}},
		},
		Post: []cprog.Stmt{cprog.Assert{Cond: cprog.Eq(cprog.V("r"), cprog.C(1))}},
	}
	for _, mm := range memmodel.All() {
		if run(t, p, mm, 1) != Safe {
			t.Errorf("%v: own store must be visible to the same-address load", mm)
		}
	}
}

// TestRfiRestoresSBOrderInNoForwardingModel: the sb_rfi shape — a
// same-address read between the store and the cross-variable read — chains
// Wx < Rx(own) < Ry, so the SB outcome is forbidden even under TSO/PSO in
// the no-forwarding machine (full x86-TSO with forwarding would allow it).
func TestRfiRestoresSBOrderInNoForwardingModel(t *testing.T) {
	p := &cprog.Program{
		Name: "rfi",
		Shared: []cprog.SharedDecl{
			{Name: "x"}, {Name: "y"}, {Name: "r"}, {Name: "s"},
			{Name: "o1"}, {Name: "o2"},
		},
		Threads: []*cprog.Thread{
			{Name: "t1", Body: []cprog.Stmt{
				cprog.Set("x", cprog.C(1)),
				cprog.Set("o1", cprog.V("x")),
				cprog.Set("r", cprog.V("y")),
			}},
			{Name: "t2", Body: []cprog.Stmt{
				cprog.Set("y", cprog.C(1)),
				cprog.Set("o2", cprog.V("y")),
				cprog.Set("s", cprog.V("x")),
			}},
		},
		Post: []cprog.Stmt{cprog.Assert{Cond: cprog.LNot(cprog.LAnd(
			cprog.Eq(cprog.V("r"), cprog.C(0)),
			cprog.Eq(cprog.V("s"), cprog.C(0))))}},
	}
	for _, mm := range memmodel.All() {
		if run(t, p, mm, 1) != Safe {
			t.Errorf("%v: rfi must forbid the SB outcome without forwarding", mm)
		}
	}
}

// TestFlushInterleavesWithOtherThreads: a buffered store can become visible
// at any later point, so another thread may observe the store before the
// writer's next step runs.
func TestFlushInterleavesWithOtherThreads(t *testing.T) {
	p := &cprog.Program{
		Name:   "flush",
		Shared: []cprog.SharedDecl{{Name: "x"}, {Name: "seen"}},
		Threads: []*cprog.Thread{
			{Name: "w", Body: []cprog.Stmt{
				cprog.Set("x", cprog.C(1)),
				cprog.Fence{}, // forces the flush to happen before w finishes
			}},
			{Name: "r", Body: []cprog.Stmt{
				cprog.Set("seen", cprog.V("x")),
			}},
		},
		// Both outcomes reachable: the assert pinning seen==0 must be
		// violable (the reader can observe the flushed store).
		Post: []cprog.Stmt{cprog.Assert{Cond: cprog.Eq(cprog.V("seen"), cprog.C(0))}},
	}
	for _, mm := range memmodel.All() {
		if run(t, p, mm, 1) != Unsafe {
			t.Errorf("%v: reader must be able to observe the store", mm)
		}
	}
}

// TestAtomicDrainsUnderWMM: an atomic section under TSO/PSO operates on
// memory after a drain, so its effect is immediately visible and ordered.
func TestAtomicDrainsUnderWMM(t *testing.T) {
	p := &cprog.Program{
		Name:   "atomicdrain",
		Shared: []cprog.SharedDecl{{Name: "x"}, {Name: "y"}, {Name: "bad"}},
		Threads: []*cprog.Thread{
			{Name: "w", Body: []cprog.Stmt{
				cprog.Set("x", cprog.C(1)),
				cprog.Atomic{Body: []cprog.Stmt{cprog.Set("y", cprog.C(1))}},
			}},
			{Name: "r", Body: []cprog.Stmt{
				cprog.If{
					Cond: cprog.Eq(cprog.V("y"), cprog.C(1)),
					Then: []cprog.Stmt{cprog.If{
						Cond: cprog.Eq(cprog.V("x"), cprog.C(0)),
						Then: []cprog.Stmt{cprog.Set("bad", cprog.C(1))},
					}},
				},
			}},
		},
		Post: []cprog.Stmt{cprog.Assert{Cond: cprog.Eq(cprog.V("bad"), cprog.C(0))}},
	}
	// The atomic drains the pending x store first, so y==1 implies x==1:
	// safe even under PSO (where a plain store pair would be unsafe).
	if run(t, p, memmodel.PSO, 1) != Safe {
		t.Error("atomic section must drain the buffer before executing")
	}
}
