package interp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"zpre/internal/cprog"
	"zpre/internal/memmodel"
)

// Result is the explicit-state verdict.
type Result int

// Verdicts.
const (
	// Safe: no interleaving violates an assertion.
	Safe Result = iota
	// Unsafe: some interleaving violates an assertion.
	Unsafe
	// Deadlock: some interleaving reaches a state with unfinished threads
	// and no enabled action (only with Options.DetectDeadlock).
	Deadlock
)

// String renders the result in SV-COMP vocabulary.
func (r Result) String() string {
	switch r {
	case Safe:
		return "true"
	case Unsafe:
		return "false"
	case Deadlock:
		return "deadlock"
	}
	return "?"
}

// ErrStateExplosion is returned when the visited-state budget is exhausted.
var ErrStateExplosion = errors.New("interp: state budget exhausted")

// Options configures a Run.
type Options struct {
	// Model is the memory model; TSO/PSO use store-buffer semantics.
	Model memmodel.Model
	// DetectDeadlock reports Deadlock when some reachable state has
	// unfinished threads but no enabled action (e.g. cyclic lock
	// acquisition). Off by default: assertion checking treats deadlocked
	// paths as silent dead ends, like the BMC encoding does.
	DetectDeadlock bool
	// Width is the integer bit width (must match the encoder's for
	// differential testing). Default 8.
	Width int
	// HavocValues is the domain for havoc statements. Defaults to the full
	// 2^Width range when Width <= 4, else {0, 1}.
	HavocValues []uint64
	// MaxStates bounds the visited set (default 1 << 22).
	MaxStates int
}

// bufEntry is one pending store in a store buffer.
type bufEntry struct {
	varIdx int
	val    uint64
}

// state is one global configuration of the interleaving exploration.
type state struct {
	mem      []uint64
	pcs      []int
	locals   [][]uint64
	bufs     [][]bufEntry // empty slices under SC
	violated bool         // some assertion failed on this path
}

func (s *state) clone() *state {
	ns := &state{
		mem:      append([]uint64(nil), s.mem...),
		pcs:      append([]int(nil), s.pcs...),
		locals:   make([][]uint64, len(s.locals)),
		bufs:     make([][]bufEntry, len(s.bufs)),
		violated: s.violated,
	}
	for i := range s.locals {
		ns.locals[i] = append([]uint64(nil), s.locals[i]...)
	}
	for i := range s.bufs {
		ns.bufs[i] = append([]bufEntry(nil), s.bufs[i]...)
	}
	return ns
}

func (s *state) key() string {
	var buf []byte
	put := func(v uint64) { buf = binary.AppendUvarint(buf, v) }
	for _, v := range s.mem {
		put(v)
	}
	for _, v := range s.pcs {
		put(uint64(v))
	}
	for _, ls := range s.locals {
		put(uint64(len(ls)))
		for _, v := range ls {
			put(v)
		}
	}
	for _, b := range s.bufs {
		put(uint64(len(b)))
		for _, e := range b {
			put(uint64(e.varIdx))
			put(e.val)
		}
	}
	put(b2u(s.violated))
	return string(buf)
}

type machine struct {
	detectDeadlock bool
	model          memmodel.Model
	width          int
	mask           uint64
	threads        []threadCode
	slotOf         []map[string]int // per thread: name → local slot
	postIdx        int              // thread index of the post (join) thread, -1 if none
	havoc          []uint64
	max            int
	// err is the first evaluation failure (unresolved local, unknown
	// operator). Expression evaluation happens deep inside the step
	// machinery where an error return would thread through every layer, so
	// it latches here and explore surfaces it: a malformed corpus program
	// fails its one task instead of panicking the process.
	err error
}

// fail latches the first evaluation error.
func (m *machine) fail(format string, args ...any) {
	if m.err == nil {
		m.err = fmt.Errorf(format, args...)
	}
}

// Run explores all interleavings of the program (unrolled at the given
// bound) under the memory model and reports Safe or Unsafe.
func Run(p *cprog.Program, unroll int, opts Options) (Result, error) {
	if opts.Width == 0 {
		opts.Width = 8
	}
	if opts.MaxStates == 0 {
		opts.MaxStates = 1 << 22
	}
	if opts.HavocValues == nil {
		if opts.Width <= 4 {
			for v := uint64(0); v < 1<<uint(opts.Width); v++ {
				opts.HavocValues = append(opts.HavocValues, v)
			}
		} else {
			opts.HavocValues = []uint64{0, 1}
		}
	}
	if err := p.Validate(); err != nil {
		return Safe, err
	}
	unrolled := cprog.Unroll(p, unroll, cprog.UnwindAssume)

	sharedIdx := map[string]int{}
	mem := make([]uint64, len(unrolled.Shared))
	mask := uint64(1)<<uint(opts.Width) - 1
	for i, d := range unrolled.Shared {
		sharedIdx[d.Name] = i
		mem[i] = uint64(d.Init) & mask
	}

	m := &machine{
		detectDeadlock: opts.DetectDeadlock,
		model:          opts.Model,
		width:          opts.Width,
		mask:           mask,
		postIdx:        -1,
		havoc:          opts.HavocValues,
		max:            opts.MaxStates,
	}
	for _, t := range unrolled.Threads {
		tc, err := compileThread(t.Name, t.Body, sharedIdx)
		if err != nil {
			return Safe, err
		}
		m.threads = append(m.threads, tc)
	}
	if len(unrolled.Post) > 0 {
		tc, err := compileThread("main.post", unrolled.Post, sharedIdx)
		if err != nil {
			return Safe, err
		}
		m.postIdx = len(m.threads)
		m.threads = append(m.threads, tc)
	}
	m.slotOf = make([]map[string]int, len(m.threads))
	for i := range m.threads {
		// Rebuild name → slot from a fresh compile pass is wasteful; the
		// compiler kept the mapping, recover it here.
		m.slotOf[i] = slotMap(&m.threads[i])
	}

	init := &state{
		mem:    mem,
		pcs:    make([]int, len(m.threads)),
		locals: make([][]uint64, len(m.threads)),
		bufs:   make([][]bufEntry, len(m.threads)),
	}
	for i := range m.threads {
		init.locals[i] = make([]uint64, m.threads[i].nSlots)
	}
	return m.explore(init)
}

// slotMap reconstructs the name → slot mapping of a compiled thread by
// replaying the compiler's slot-allocation order recorded in slotNames.
func slotMap(tc *threadCode) map[string]int {
	out := make(map[string]int, len(tc.slotNames))
	for i, n := range tc.slotNames {
		out[n] = i
	}
	return out
}

func (m *machine) explore(init *state) (Result, error) {
	visited := map[string]bool{init.key(): true}
	stack := []*state{init}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// Completion semantics (matching the BMC encoding, where Φ_prog
		// constrains the whole execution): a violation counts only on a
		// fully completed, assume-consistent run.
		if s.violated && m.completed(s) {
			return Unsafe, nil
		}
		succs, err := m.successors(s)
		if err != nil {
			return Safe, err
		}
		if m.detectDeadlock && len(succs) == 0 && !m.completed(s) {
			return Deadlock, nil
		}
		for _, ns := range succs {
			k := ns.key()
			if !visited[k] {
				if len(visited) >= m.max {
					return Safe, ErrStateExplosion
				}
				visited[k] = true
				stack = append(stack, ns)
			}
		}
	}
	return Safe, nil
}

// completed reports whether every thread has run to the end and every store
// buffer has drained.
func (m *machine) completed(s *state) bool {
	for t := range m.threads {
		if s.pcs[t] < len(m.threads[t].ops) || len(s.bufs[t]) > 0 {
			return false
		}
	}
	return true
}

func (m *machine) threadEnabled(s *state, t int) bool {
	if s.pcs[t] >= len(m.threads[t].ops) {
		return false
	}
	if t == m.postIdx {
		// The join thread runs only after every worker finished and all
		// store buffers drained.
		for i := range m.threads {
			if i == m.postIdx {
				continue
			}
			if s.pcs[i] < len(m.threads[i].ops) || len(s.bufs[i]) > 0 {
				return false
			}
		}
	}
	return true
}

// successors generates all one-step successors of s.
func (m *machine) successors(s *state) ([]*state, error) {
	var out []*state
	for t := range m.threads {
		if !m.threadEnabled(s, t) {
			continue
		}
		out = append(out, m.step(s, t)...)
	}
	// Flush actions for store buffers.
	if m.model != memmodel.SC {
		for t := range m.threads {
			buf := s.bufs[t]
			if len(buf) == 0 {
				continue
			}
			if m.model == memmodel.TSO {
				ns := s.clone()
				e := ns.bufs[t][0]
				ns.bufs[t] = append([]bufEntry(nil), ns.bufs[t][1:]...)
				ns.mem[e.varIdx] = e.val
				out = append(out, ns)
			} else { // PSO: the oldest pending store of any variable
				seen := map[int]bool{}
				for i, e := range buf {
					if seen[e.varIdx] {
						continue
					}
					seen[e.varIdx] = true
					ns := s.clone()
					ns.mem[e.varIdx] = e.val
					ns.bufs[t] = append(append([]bufEntry(nil), buf[:i]...), buf[i+1:]...)
					out = append(out, ns)
				}
			}
		}
	}
	if m.err != nil {
		return nil, m.err
	}
	return out, nil
}

// partial is an in-flight step execution (forks at havoc).
type partial struct {
	st *state
	pc int
}

// step executes one scheduler step of thread t: a single micro-op, or a full
// atomic group. It returns the successor states (several when havoc forks,
// none when the step is disabled or an assumption fails).
func (m *machine) step(s *state, t int) []*state {
	tc := &m.threads[t]
	startOp := tc.ops[s.pcs[t]]
	group := startOp.group
	if group != 0 && m.model != memmodel.SC {
		// x86-style semantics: an atomic section starts with a drained
		// buffer; its accesses hit memory directly.
		if len(s.bufs[t]) > 0 {
			return nil
		}
	}
	var done []*state
	work := []partial{{st: s.clone(), pc: s.pcs[t]}}
	for len(work) > 0 {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		o := tc.ops[p.pc]
		nextPC := p.pc + 1
		inAtomic := group != 0
		st := p.st
		switch o.kind {
		case opLoad:
			if m.model != memmodel.SC && !inAtomic && m.pendingStore(st, t, o.shared) {
				continue // same-address load stalls until the store drains
			}
			st.locals[t][o.dst] = st.mem[o.shared]
		case opLocal:
			st.locals[t][o.dst] = m.eval(st, t, o.e)
		case opStore:
			m.store(st, t, o.shared, m.eval(st, t, o.e), inAtomic)
		case opAssume:
			if m.eval(st, t, o.e) == 0 {
				continue // path abandoned
			}
		case opAssert:
			if m.eval(st, t, o.e) == 0 {
				st.violated = true
			}
		case opBranchZ:
			if m.eval(st, t, o.e) == 0 {
				nextPC = o.target
			}
		case opJump:
			nextPC = o.target
		case opTAS:
			if m.model != memmodel.SC && len(st.bufs[t]) > 0 {
				continue // must drain first (a flush action will enable it)
			}
			if st.mem[o.shared] != 0 {
				continue // lock unavailable: blocked
			}
			st.mem[o.shared] = 1
		case opFence:
			if len(st.bufs[t]) > 0 {
				continue // blocked until drained
			}
		case opHavocL:
			for _, v := range m.havoc {
				ns := st.clone()
				ns.locals[t][o.dst] = v
				m.continueStep(ns, t, nextPC, group, &work, &done)
			}
			continue
		case opHavocS:
			for _, v := range m.havoc {
				ns := st.clone()
				m.store(ns, t, o.shared, v, inAtomic)
				m.continueStep(ns, t, nextPC, group, &work, &done)
			}
			continue
		}
		m.continueStep(st, t, nextPC, group, &work, &done)
	}
	return done
}

// continueStep either queues the next op of an atomic group or finalises the
// step by committing the program counter.
func (m *machine) continueStep(st *state, t, nextPC, group int, work *[]partial, done *[]*state) {
	if group != 0 && nextPC < len(m.threads[t].ops) && m.threads[t].ops[nextPC].group == group {
		*work = append(*work, partial{st: st, pc: nextPC})
		return
	}
	st.pcs[t] = nextPC
	*done = append(*done, st)
}

// pendingStore reports whether thread t has a buffered store to varIdx.
// Loads of a variable with a pending own store stall until it drains: this
// "no store forwarding" buffer machine matches the paper's axiomatic model
// (program order relaxed only from a write to a read/write of a DIFFERENT
// address), unlike full x86-TSO whose forwarding admits strictly more
// behaviours (the n6 litmus corner).
func (m *machine) pendingStore(s *state, t, varIdx int) bool {
	for _, e := range s.bufs[t] {
		if e.varIdx == varIdx {
			return true
		}
	}
	return false
}

// store writes a shared variable: buffered under WMM, direct under SC or
// inside an atomic section.
func (m *machine) store(s *state, t, varIdx int, val uint64, direct bool) {
	val &= m.mask
	if m.model == memmodel.SC || direct {
		s.mem[varIdx] = val
		return
	}
	s.bufs[t] = append(s.bufs[t], bufEntry{varIdx: varIdx, val: val})
}

// eval computes a local expression (no shared references remain after
// compilation) with width-masked wrap-around arithmetic and signed
// comparisons, matching the encoder's semantics.
func (m *machine) eval(s *state, t int, e cprog.Expr) uint64 {
	v := m.evalRaw(s, t, e)
	return v & m.mask
}

func (m *machine) toSigned(v uint64) int64 {
	sign := uint64(1) << uint(m.width-1)
	if v&sign != 0 {
		return int64(v) - int64(1)<<uint(m.width)
	}
	return int64(v)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (m *machine) evalRaw(s *state, t int, e cprog.Expr) uint64 {
	switch x := e.(type) {
	case cprog.Const:
		return uint64(x.Value) & m.mask
	case cprog.Ref:
		slot, ok := m.slotOf[t][x.Name]
		if !ok {
			m.fail("interp: unresolved local %q in thread %d", x.Name, t)
			return 0
		}
		return s.locals[t][slot]
	case cprog.UnOp:
		v := m.eval(s, t, x.X)
		switch x.Op {
		case cprog.OpNeg:
			return (-v) & m.mask
		case cprog.OpBitNot:
			return (^v) & m.mask
		case cprog.OpLNot:
			return b2u(v == 0)
		}
		m.fail("interp: unknown unary operator %d in thread %d", x.Op, t)
		return 0
	case cprog.BinOp:
		l := m.eval(s, t, x.L)
		r := m.eval(s, t, x.R)
		switch x.Op {
		case cprog.OpAdd:
			return (l + r) & m.mask
		case cprog.OpSub:
			return (l - r) & m.mask
		case cprog.OpMul:
			return (l * r) & m.mask
		case cprog.OpBitAnd:
			return l & r
		case cprog.OpBitOr:
			return l | r
		case cprog.OpBitXor:
			return l ^ r
		case cprog.OpShl:
			if r >= uint64(m.width) {
				return 0
			}
			return (l << r) & m.mask
		case cprog.OpShr:
			if r >= uint64(m.width) {
				return 0
			}
			return l >> r
		case cprog.OpEq:
			return b2u(l == r)
		case cprog.OpNe:
			return b2u(l != r)
		case cprog.OpLt:
			return b2u(m.toSigned(l) < m.toSigned(r))
		case cprog.OpLe:
			return b2u(m.toSigned(l) <= m.toSigned(r))
		case cprog.OpGt:
			return b2u(m.toSigned(l) > m.toSigned(r))
		case cprog.OpGe:
			return b2u(m.toSigned(l) >= m.toSigned(r))
		case cprog.OpLAnd:
			return b2u(l != 0 && r != 0)
		case cprog.OpLOr:
			return b2u(l != 0 || r != 0)
		}
		m.fail("interp: unknown binary operator %d in thread %d", x.Op, t)
		return 0
	}
	m.fail("interp: unknown expression %T in thread %d", e, t)
	return 0
}
