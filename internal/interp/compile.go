// Package interp is an explicit-state model checker for the cprog language:
// it enumerates all interleavings of a (loop-free or unrolled) program and
// reports whether any assertion can be violated. Sequential consistency is
// the direct interleaving semantics; TSO and PSO are realised operationally
// with per-thread (TSO) or per-thread-per-variable (PSO) FIFO store buffers.
//
// The package exists as a differential oracle for the SMT pipeline: on small
// programs (small bit widths, fully-enumerated havoc domains) its verdict
// must coincide with the verdict of encode+solve. Known scope limit: lock
// and atomic sections under TSO/PSO are given x86-style "drain the buffer"
// semantics, which is slightly stronger than the axiomatic encoding; the
// differential tests therefore exercise locks under SC only.
package interp

import (
	"fmt"

	"zpre/internal/cprog"
)

type opKind int

const (
	opLoad    opKind = iota // tmp[dst] = mem[shared]
	opLocal                 // local[dst] = eval(e)
	opStore                 // mem[shared] = eval(e)
	opAssume                // abandon path unless eval(e) != 0
	opAssert                // violation if eval(e) == 0
	opBranchZ               // if eval(e) == 0 jump to target
	opJump                  // jump to target
	opTAS                   // test-and-set: requires mem[shared]==0, sets 1
	opHavocL                // local[dst] = nondet
	opHavocS                // mem[shared] = nondet
	opFence                 // block until own store buffer(s) empty
)

// op is one atomic micro-operation. Shared loads/stores are the only global
// interleaving points; expressions in e reference locals and temporaries
// only.
type op struct {
	kind   opKind
	shared int // shared-variable index
	dst    int // local slot
	e      cprog.Expr
	target int
	group  int // non-zero: atomic group id
}

// threadCode is a compiled thread.
type threadCode struct {
	name      string
	ops       []op
	nSlots    int
	slotNames []string // slot index → name (locals and temporaries)
}

type compiler struct {
	sharedIdx map[string]int
	slots     map[string]int
	slotNames []string
	ops       []op
	group     int
	groupSeq  int
	err       error
}

func (c *compiler) slot(name string) int {
	if i, ok := c.slots[name]; ok {
		return i
	}
	i := len(c.slots)
	c.slots[name] = i
	c.slotNames = append(c.slotNames, name)
	return i
}

func (c *compiler) emit(o op) int {
	o.group = c.group
	c.ops = append(c.ops, o)
	return len(c.ops) - 1
}

// rewriteExpr replaces each shared-variable reference with a fresh temporary
// fed by an emitted load, preserving left-to-right evaluation order.
func (c *compiler) rewriteExpr(e cprog.Expr) cprog.Expr {
	switch x := e.(type) {
	case cprog.Const:
		return x
	case cprog.Ref:
		if si, ok := c.sharedIdx[x.Name]; ok {
			tmp := fmt.Sprintf("%%t%d", len(c.ops))
			c.emit(op{kind: opLoad, shared: si, dst: c.slot(tmp)})
			return cprog.Ref{Name: tmp}
		}
		return x
	case cprog.UnOp:
		return cprog.UnOp{Op: x.Op, X: c.rewriteExpr(x.X)}
	case cprog.BinOp:
		l := c.rewriteExpr(x.L)
		r := c.rewriteExpr(x.R)
		return cprog.BinOp{Op: x.Op, L: l, R: r}
	}
	c.err = fmt.Errorf("interp: unknown expression %T", e)
	return cprog.Const{}
}

func (c *compiler) compileStmts(body []cprog.Stmt) {
	for _, s := range body {
		if c.err != nil {
			return
		}
		c.compileStmt(s)
	}
}

func (c *compiler) compileStmt(s cprog.Stmt) {
	switch st := s.(type) {
	case cprog.Local:
		var e cprog.Expr = cprog.Const{Value: 0}
		if st.Init != nil {
			e = c.rewriteExpr(st.Init)
		}
		c.emit(op{kind: opLocal, dst: c.slot(st.Name), e: e})
	case cprog.Assign:
		e := c.rewriteExpr(st.Rhs)
		if si, ok := c.sharedIdx[st.Lhs]; ok {
			c.emit(op{kind: opStore, shared: si, e: e})
		} else {
			c.emit(op{kind: opLocal, dst: c.slot(st.Lhs), e: e})
		}
	case cprog.Assume:
		e := c.rewriteExpr(st.Cond)
		c.emit(op{kind: opAssume, e: e})
	case cprog.Assert:
		e := c.rewriteExpr(st.Cond)
		c.emit(op{kind: opAssert, e: e})
	case cprog.If:
		e := c.rewriteExpr(st.Cond)
		br := c.emit(op{kind: opBranchZ, e: e})
		c.compileStmts(st.Then)
		if len(st.Else) > 0 {
			jmp := c.emit(op{kind: opJump})
			c.ops[br].target = len(c.ops)
			c.compileStmts(st.Else)
			c.ops[jmp].target = len(c.ops)
		} else {
			c.ops[br].target = len(c.ops)
		}
	case cprog.While:
		c.err = fmt.Errorf("interp: while reached (program not unrolled)")
	case cprog.Lock:
		// Full-barrier acquire: the TAS itself requires a drained buffer.
		si := c.sharedIdx[st.Mutex]
		c.emit(op{kind: opTAS, shared: si})
	case cprog.Unlock:
		// Full-barrier release: drain the buffer, then store 0 directly so
		// the unlocking write is immediately visible (matching the fence +
		// store + fence shape of the encoder).
		si := c.sharedIdx[st.Mutex]
		c.emit(op{kind: opFence})
		c.emit(op{kind: opStore, shared: si, e: cprog.Const{Value: 0}})
		c.emit(op{kind: opFence})
	case cprog.Fence:
		c.emit(op{kind: opFence})
	case cprog.Atomic:
		if c.group != 0 {
			c.err = fmt.Errorf("interp: nested atomic sections unsupported")
			return
		}
		c.groupSeq++
		c.group = c.groupSeq
		c.compileStmts(st.Body)
		c.group = 0
	case cprog.Havoc:
		if si, ok := c.sharedIdx[st.Name]; ok {
			c.emit(op{kind: opHavocS, shared: si})
		} else {
			c.emit(op{kind: opHavocL, dst: c.slot(st.Name)})
		}
	default:
		c.err = fmt.Errorf("interp: unknown statement %T", s)
	}
}

func compileThread(name string, body []cprog.Stmt, sharedIdx map[string]int) (threadCode, error) {
	c := &compiler{sharedIdx: sharedIdx, slots: map[string]int{}}
	c.compileStmts(body)
	if c.err != nil {
		return threadCode{}, c.err
	}
	return threadCode{name: name, ops: c.ops, nSlots: len(c.slots), slotNames: c.slotNames}, nil
}
