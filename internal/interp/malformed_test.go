package interp

import (
	"strings"
	"testing"

	"zpre/internal/cprog"
	"zpre/internal/memmodel"
)

// An invalid operator code passes cprog.Validate (which checks declarations
// and node types, not opcode ranges), so it can reach evaluation from a
// malformed corpus program. The interpreter must fail the run with an error,
// not panic the process.
func TestMalformedUnaryOpReturnsError(t *testing.T) {
	p := &cprog.Program{
		Name:   "bad-unop",
		Shared: []cprog.SharedDecl{{Name: "x"}},
		Threads: []*cprog.Thread{{Name: "t1", Body: []cprog.Stmt{
			cprog.Set("x", cprog.UnOp{Op: 99, X: cprog.C(1)}),
		}}},
	}
	_, err := Run(p, 1, Options{Model: memmodel.SC, Width: 4})
	if err == nil {
		t.Fatal("malformed unary op: no error")
	}
	if !strings.Contains(err.Error(), "unknown unary operator") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestMalformedBinaryOpReturnsError(t *testing.T) {
	p := &cprog.Program{
		Name:   "bad-binop",
		Shared: []cprog.SharedDecl{{Name: "x"}},
		Threads: []*cprog.Thread{{Name: "t1", Body: []cprog.Stmt{
			cprog.Set("x", cprog.BinOp{Op: 99, L: cprog.C(1), R: cprog.C(2)}),
		}}},
	}
	_, err := Run(p, 1, Options{Model: memmodel.SC, Width: 4})
	if err == nil {
		t.Fatal("malformed binary op: no error")
	}
	if !strings.Contains(err.Error(), "unknown binary operator") {
		t.Fatalf("unexpected error: %v", err)
	}
}
