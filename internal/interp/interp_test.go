package interp

import (
	"testing"

	"zpre/internal/cprog"
	"zpre/internal/memmodel"
)

func run(t *testing.T, p *cprog.Program, mm memmodel.Model, unroll int) Result {
	t.Helper()
	r, err := Run(p, unroll, Options{Model: mm, Width: 4})
	if err != nil {
		t.Fatalf("%s/%v: %v", p.Name, mm, err)
	}
	return r
}

func sbProgram(fenced bool) *cprog.Program {
	t1 := []cprog.Stmt{cprog.Set("x", cprog.C(1))}
	t2 := []cprog.Stmt{cprog.Set("y", cprog.C(1))}
	if fenced {
		t1 = append(t1, cprog.Fence{})
		t2 = append(t2, cprog.Fence{})
	}
	t1 = append(t1, cprog.Set("r", cprog.V("y")))
	t2 = append(t2, cprog.Set("s", cprog.V("x")))
	return &cprog.Program{
		Name: "sb",
		Shared: []cprog.SharedDecl{
			{Name: "x"}, {Name: "y"}, {Name: "r"}, {Name: "s"},
		},
		Threads: []*cprog.Thread{{Name: "t1", Body: t1}, {Name: "t2", Body: t2}},
		Post: []cprog.Stmt{cprog.Assert{Cond: cprog.LNot(cprog.LAnd(
			cprog.Eq(cprog.V("r"), cprog.C(0)),
			cprog.Eq(cprog.V("s"), cprog.C(0))))}},
	}
}

func TestStoreBufferingSemantics(t *testing.T) {
	p := sbProgram(false)
	if run(t, p, memmodel.SC, 1) != Safe {
		t.Error("SB forbidden under SC")
	}
	if run(t, p, memmodel.TSO, 1) != Unsafe {
		t.Error("SB allowed under TSO")
	}
	if run(t, p, memmodel.PSO, 1) != Unsafe {
		t.Error("SB allowed under PSO")
	}
	fenced := sbProgram(true)
	for _, mm := range memmodel.All() {
		if run(t, fenced, mm, 1) != Safe {
			t.Errorf("fenced SB must be safe under %v", mm)
		}
	}
}

func TestMessagePassingSemantics(t *testing.T) {
	mp := &cprog.Program{
		Name:   "mp",
		Shared: []cprog.SharedDecl{{Name: "d"}, {Name: "f"}, {Name: "bad"}},
		Threads: []*cprog.Thread{
			{Name: "w", Body: []cprog.Stmt{
				cprog.Set("d", cprog.C(1)),
				cprog.Set("f", cprog.C(1)),
			}},
			{Name: "r", Body: []cprog.Stmt{
				cprog.If{
					Cond: cprog.Eq(cprog.V("f"), cprog.C(1)),
					Then: []cprog.Stmt{cprog.If{
						Cond: cprog.Eq(cprog.V("d"), cprog.C(0)),
						Then: []cprog.Stmt{cprog.Set("bad", cprog.C(1))},
					}},
				},
			}},
		},
		Post: []cprog.Stmt{cprog.Assert{Cond: cprog.Eq(cprog.V("bad"), cprog.C(0))}},
	}
	if run(t, mp, memmodel.SC, 1) != Safe {
		t.Error("MP forbidden under SC")
	}
	if run(t, mp, memmodel.TSO, 1) != Safe {
		t.Error("MP forbidden under TSO (FIFO buffer)")
	}
	if run(t, mp, memmodel.PSO, 1) != Unsafe {
		t.Error("MP allowed under PSO (per-variable buffers)")
	}
}

func TestLockMutualExclusionSC(t *testing.T) {
	mk := func(locked bool) *cprog.Program {
		body := func() []cprog.Stmt {
			inner := []cprog.Stmt{cprog.Set("x", cprog.Add(cprog.V("x"), cprog.C(1)))}
			if !locked {
				return inner
			}
			out := []cprog.Stmt{cprog.Lock{Mutex: "m"}}
			out = append(out, inner...)
			return append(out, cprog.Unlock{Mutex: "m"})
		}
		return &cprog.Program{
			Name:   "incr",
			Shared: []cprog.SharedDecl{{Name: "x"}, {Name: "m"}},
			Threads: []*cprog.Thread{
				{Name: "a", Body: body()},
				{Name: "b", Body: body()},
			},
			Post: []cprog.Stmt{cprog.Assert{Cond: cprog.Eq(cprog.V("x"), cprog.C(2))}},
		}
	}
	if run(t, mk(true), memmodel.SC, 1) != Safe {
		t.Error("locked increments must serialise")
	}
	if run(t, mk(false), memmodel.SC, 1) != Unsafe {
		t.Error("unlocked increments race")
	}
}

func TestAtomicSection(t *testing.T) {
	mk := func(atomic bool) *cprog.Program {
		inner := []cprog.Stmt{cprog.Set("x", cprog.Add(cprog.V("x"), cprog.C(1)))}
		body := inner
		if atomic {
			body = []cprog.Stmt{cprog.Atomic{Body: inner}}
		}
		return &cprog.Program{
			Name:   "atomic",
			Shared: []cprog.SharedDecl{{Name: "x"}},
			Threads: []*cprog.Thread{
				{Name: "a", Body: body},
				{Name: "b", Body: body},
			},
			Post: []cprog.Stmt{cprog.Assert{Cond: cprog.Eq(cprog.V("x"), cprog.C(2))}},
		}
	}
	if run(t, mk(true), memmodel.SC, 1) != Safe {
		t.Error("atomic increments must serialise")
	}
	if run(t, mk(false), memmodel.SC, 1) != Unsafe {
		t.Error("bare increments race")
	}
	// Atomicity also holds under WMM (drain semantics).
	if run(t, mk(true), memmodel.PSO, 1) != Safe {
		t.Error("atomic increments must serialise under PSO")
	}
}

func TestAssumeCutsViolations(t *testing.T) {
	// The assert fires before the assume in program order, but the assume is
	// globally false: completion semantics discards the whole execution.
	p := &cprog.Program{
		Name:   "cut",
		Shared: []cprog.SharedDecl{{Name: "x"}},
		Threads: []*cprog.Thread{{Name: "t", Body: []cprog.Stmt{
			cprog.Assert{Cond: cprog.C(0)}, // always violated...
			cprog.Assume{Cond: cprog.C(0)}, // ...but never on a completed run
		}}},
	}
	if run(t, p, memmodel.SC, 1) != Safe {
		t.Error("assume after assert must suppress the violation (BMC semantics)")
	}
}

func TestHavocDomain(t *testing.T) {
	p := &cprog.Program{
		Name:   "hv",
		Shared: []cprog.SharedDecl{{Name: "x"}},
		Threads: []*cprog.Thread{{Name: "t", Body: []cprog.Stmt{
			cprog.Havoc{Name: "x"},
		}}},
		Post: []cprog.Stmt{cprog.Assert{Cond: cprog.Ne(cprog.V("x"), cprog.C(9))}},
	}
	// Width 4: havoc ranges over 0..15, so x == 9 is reachable.
	r, err := Run(p, 1, Options{Model: memmodel.SC, Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r != Unsafe {
		t.Error("havoc must cover the full width-4 domain")
	}
	// Restricted domain misses it.
	r, err = Run(p, 1, Options{Model: memmodel.SC, Width: 4, HavocValues: []uint64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r != Safe {
		t.Error("restricted havoc domain should miss 9")
	}
}

func TestUnrollBoundSemantics(t *testing.T) {
	// Two iterations needed to reach x == 2.
	p := &cprog.Program{
		Name:   "loop2",
		Shared: []cprog.SharedDecl{{Name: "x"}},
		Threads: []*cprog.Thread{{Name: "t", Body: []cprog.Stmt{
			cprog.Local{Name: "c"},
			cprog.While{Cond: cprog.Lt(cprog.V("c"), cprog.C(2)), Body: []cprog.Stmt{
				cprog.Set("x", cprog.Add(cprog.V("x"), cprog.C(1))),
				cprog.Set("c", cprog.Add(cprog.V("c"), cprog.C(1))),
			}},
		}}},
		Post: []cprog.Stmt{cprog.Assert{Cond: cprog.Ne(cprog.V("x"), cprog.C(2))}},
	}
	if run(t, p, memmodel.SC, 1) != Safe {
		t.Error("bound 1 cannot complete the loop: no violation")
	}
	if run(t, p, memmodel.SC, 2) != Unsafe {
		t.Error("bound 2 reaches x == 2")
	}
}

func TestFenceBlocksUntilDrained(t *testing.T) {
	// Under TSO, a fence forces the buffered store out before the next read:
	// exactly the fenced-SB safety from TestStoreBufferingSemantics. Here we
	// additionally check a fence-only thread terminates (no deadlock).
	p := &cprog.Program{
		Name:   "fence",
		Shared: []cprog.SharedDecl{{Name: "x"}},
		Threads: []*cprog.Thread{{Name: "t", Body: []cprog.Stmt{
			cprog.Set("x", cprog.C(1)),
			cprog.Fence{},
			cprog.Assert{Cond: cprog.Eq(cprog.V("x"), cprog.C(1))},
		}}},
	}
	for _, mm := range memmodel.All() {
		if run(t, p, mm, 1) != Safe {
			t.Errorf("%v: own store after fence must be visible", mm)
		}
	}
}

func TestStateExplosionBudget(t *testing.T) {
	// Many independent havoc writes blow past a tiny budget.
	p := &cprog.Program{
		Name: "boom",
		Shared: []cprog.SharedDecl{
			{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"},
		},
		Threads: []*cprog.Thread{
			{Name: "t1", Body: []cprog.Stmt{cprog.Havoc{Name: "a"}, cprog.Havoc{Name: "b"}}},
			{Name: "t2", Body: []cprog.Stmt{cprog.Havoc{Name: "c"}, cprog.Havoc{Name: "d"}}},
		},
		Post: []cprog.Stmt{cprog.Assert{Cond: cprog.C(1)}},
	}
	_, err := Run(p, 1, Options{Model: memmodel.SC, Width: 4, MaxStates: 10})
	if err != ErrStateExplosion {
		t.Fatalf("want ErrStateExplosion, got %v", err)
	}
}

func TestDeadlockIsNotViolation(t *testing.T) {
	// Two threads lock in opposite order with a held lock: executions that
	// deadlock never complete, so the (unreachable) assert stays unviolated;
	// executions that serialise complete safely.
	p := &cprog.Program{
		Name:   "dead",
		Shared: []cprog.SharedDecl{{Name: "m1"}, {Name: "m2"}, {Name: "x"}},
		Threads: []*cprog.Thread{
			{Name: "a", Body: []cprog.Stmt{
				cprog.Lock{Mutex: "m1"}, cprog.Lock{Mutex: "m2"},
				cprog.Set("x", cprog.C(1)),
				cprog.Unlock{Mutex: "m2"}, cprog.Unlock{Mutex: "m1"},
			}},
			{Name: "b", Body: []cprog.Stmt{
				cprog.Lock{Mutex: "m2"}, cprog.Lock{Mutex: "m1"},
				cprog.Set("x", cprog.C(2)),
				cprog.Unlock{Mutex: "m1"}, cprog.Unlock{Mutex: "m2"},
			}},
		},
		Post: []cprog.Stmt{cprog.Assert{Cond: cprog.Ne(cprog.V("x"), cprog.C(0))}},
	}
	if run(t, p, memmodel.SC, 1) != Safe {
		t.Error("deadlocked paths must not count; completed paths set x != 0")
	}
}

func TestResultString(t *testing.T) {
	if Safe.String() != "true" || Unsafe.String() != "false" {
		t.Error("SV-COMP vocabulary broken")
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Opposite-order lock acquisition: a classic deadlock.
	p := &cprog.Program{
		Name:   "abba",
		Shared: []cprog.SharedDecl{{Name: "m1"}, {Name: "m2"}, {Name: "x"}},
		Threads: []*cprog.Thread{
			{Name: "a", Body: []cprog.Stmt{
				cprog.Lock{Mutex: "m1"}, cprog.Lock{Mutex: "m2"},
				cprog.Set("x", cprog.C(1)),
				cprog.Unlock{Mutex: "m2"}, cprog.Unlock{Mutex: "m1"},
			}},
			{Name: "b", Body: []cprog.Stmt{
				cprog.Lock{Mutex: "m2"}, cprog.Lock{Mutex: "m1"},
				cprog.Set("x", cprog.C(2)),
				cprog.Unlock{Mutex: "m1"}, cprog.Unlock{Mutex: "m2"},
			}},
		},
	}
	r, err := Run(p, 1, Options{Model: memmodel.SC, Width: 4, DetectDeadlock: true})
	if err != nil {
		t.Fatal(err)
	}
	if r != Deadlock {
		t.Fatalf("ABBA locking must deadlock, got %v", r)
	}
	// Consistent lock order: no deadlock.
	p2 := &cprog.Program{
		Name:   "abab",
		Shared: []cprog.SharedDecl{{Name: "m1"}, {Name: "m2"}, {Name: "x"}},
		Threads: []*cprog.Thread{
			{Name: "a", Body: []cprog.Stmt{
				cprog.Lock{Mutex: "m1"}, cprog.Lock{Mutex: "m2"},
				cprog.Set("x", cprog.C(1)),
				cprog.Unlock{Mutex: "m2"}, cprog.Unlock{Mutex: "m1"},
			}},
			{Name: "b", Body: []cprog.Stmt{
				cprog.Lock{Mutex: "m1"}, cprog.Lock{Mutex: "m2"},
				cprog.Set("x", cprog.C(2)),
				cprog.Unlock{Mutex: "m2"}, cprog.Unlock{Mutex: "m1"},
			}},
		},
	}
	r, err = Run(p2, 1, Options{Model: memmodel.SC, Width: 4, DetectDeadlock: true})
	if err != nil {
		t.Fatal(err)
	}
	if r != Safe {
		t.Fatalf("ordered locking must be deadlock-free, got %v", r)
	}
}
