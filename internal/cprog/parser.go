package cprog

import "fmt"

// Parse converts program text to its AST and validates it. The syntax is a
// small C-like DSL:
//
//	shared x = 0;
//	shared m;                     // mutex, initially 0
//	thread t1 {
//	    local r;
//	    lock(m);
//	    r = x; x = r + 1;
//	    unlock(m);
//	}
//	thread t2 { ... }
//	main { assert(x == 2); }      // runs after all threads join
func Parse(name, src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram(name)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []token
	pos  int
	// pending holds statements to splice after the one just parsed (the
	// desugared tail of a for loop).
	pending []Stmt
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) at(s string) bool {
	t := p.cur()
	return (t.kind == tokPunct || t.kind == tokIdent) && t.text == s
}

func (p *parser) accept(s string) bool {
	if p.at(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if !p.accept(s) {
		return fmt.Errorf("%d:%d: expected %q, found %q", p.cur().line, p.cur().col, s, p.cur().String())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("%d:%d: expected identifier, found %q", t.line, t.col, t.String())
	}
	p.advance()
	return t.text, nil
}

func (p *parser) parseProgram(name string) (*Program, error) {
	prog := &Program{Name: name}
	for p.cur().kind != tokEOF {
		switch {
		case p.accept("shared"):
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			var init int64
			if p.accept("=") {
				neg := p.accept("-")
				t := p.cur()
				if t.kind != tokInt {
					return nil, fmt.Errorf("%d:%d: expected integer initialiser", t.line, t.col)
				}
				p.advance()
				init = t.val
				if neg {
					init = -init
				}
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			prog.Shared = append(prog.Shared, SharedDecl{Name: id, Init: init})
		case p.accept("thread"):
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			prog.Threads = append(prog.Threads, &Thread{Name: id, Body: body})
		case p.accept("main"):
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			prog.Post = append(prog.Post, body...)
		default:
			t := p.cur()
			return nil, fmt.Errorf("%d:%d: expected shared/thread/main, found %q", t.line, t.col, t.String())
		}
	}
	return prog, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var body []Stmt
	for !p.at("}") {
		if p.cur().kind == tokEOF {
			return nil, fmt.Errorf("unexpected end of input inside block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
		body = append(body, p.pending...)
		p.pending = nil
	}
	p.advance() // consume }
	return body, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.accept("local"):
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		var init Expr
		if p.accept("=") {
			init, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		return Local{Name: id, Init: init}, p.expect(";")
	case p.accept("assume"):
		e, err := p.parseParenExpr()
		if err != nil {
			return nil, err
		}
		return Assume{Cond: e}, p.expect(";")
	case p.accept("assert"):
		e, err := p.parseParenExpr()
		if err != nil {
			return nil, err
		}
		return Assert{Cond: e}, p.expect(";")
	case p.accept("if"):
		cond, err := p.parseParenExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.accept("else") {
			if p.at("if") {
				s, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				els = []Stmt{s}
			} else {
				els, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
		}
		return If{Cond: cond, Then: then, Else: els}, nil
	case p.accept("while"):
		cond, err := p.parseParenExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return While{Cond: cond, Body: body}, nil
	case p.accept("for"):
		// for (init; cond; step) { body } desugars to init; while (cond)
		// { body; step }. The statement returns the while; the init is
		// spliced by returning a synthetic sequence via Atomic? No — for
		// keeps loop semantics only: we return the init statement followed
		// by the loop through a trailing buffer (see pendingStmts).
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var init Stmt
		if !p.at(";") {
			var err error
			init, err = p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		var cond Expr = C(1)
		if !p.at(";") {
			var err error
			cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		var step Stmt
		if !p.at(")") {
			var err error
			step, err = p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		if step != nil {
			body = append(body, step)
		}
		loop := While{Cond: cond, Body: body}
		if init != nil {
			p.pending = append(p.pending, loop)
			return init, nil
		}
		return loop, nil
	case p.accept("lock"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return Lock{Mutex: id}, p.expect(";")
	case p.accept("unlock"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return Unlock{Mutex: id}, p.expect(";")
	case p.accept("fence"):
		return Fence{}, p.expect(";")
	case p.accept("atomic"):
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return Atomic{Body: body}, nil
	case p.accept("havoc"):
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return Havoc{Name: id}, p.expect(";")
	default:
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		// Compound assignment and increment/decrement sugar.
		compound := map[string]Op{"+=": OpAdd, "-=": OpSub, "*=": OpMul, "&=": OpBitAnd, "|=": OpBitOr, "^=": OpBitXor}
		if op, ok := compound[p.cur().text]; ok && p.cur().kind == tokPunct {
			p.advance()
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return Assign{Lhs: id, Rhs: BinOp{Op: op, L: Ref{Name: id}, R: rhs}}, p.expect(";")
		}
		if p.accept("++") {
			return Assign{Lhs: id, Rhs: Add(V(id), C(1))}, p.expect(";")
		}
		if p.accept("--") {
			return Assign{Lhs: id, Rhs: Sub(V(id), C(1))}, p.expect(";")
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return Assign{Lhs: id, Rhs: rhs}, p.expect(";")
	}
}

// parseSimpleStmt parses an assignment (including compound/++/-- sugar) or
// local declaration WITHOUT a trailing semicolon, for for-loop headers.
func (p *parser) parseSimpleStmt() (Stmt, error) {
	if p.accept("local") {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		var init Expr
		if p.accept("=") {
			init, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		return Local{Name: id, Init: init}, nil
	}
	id, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	compound := map[string]Op{"+=": OpAdd, "-=": OpSub, "*=": OpMul, "&=": OpBitAnd, "|=": OpBitOr, "^=": OpBitXor}
	if op, ok := compound[p.cur().text]; ok && p.cur().kind == tokPunct {
		p.advance()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return Assign{Lhs: id, Rhs: BinOp{Op: op, L: Ref{Name: id}, R: rhs}}, nil
	}
	if p.accept("++") {
		return Assign{Lhs: id, Rhs: Add(V(id), C(1))}, nil
	}
	if p.accept("--") {
		return Assign{Lhs: id, Rhs: Sub(V(id), C(1))}, nil
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return Assign{Lhs: id, Rhs: rhs}, nil
}

func (p *parser) parseParenExpr() (Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return e, p.expect(")")
}

// Precedence climbing. Levels from loosest to tightest:
// || , && , | , ^ , & , ==/!= , rel , shifts , +- , * , unary.

var binLevels = [][]struct {
	text string
	op   Op
}{
	{{"||", OpLOr}},
	{{"&&", OpLAnd}},
	{{"|", OpBitOr}},
	{{"^", OpBitXor}},
	{{"&", OpBitAnd}},
	{{"==", OpEq}, {"!=", OpNe}},
	{{"<=", OpLe}, {">=", OpGe}, {"<", OpLt}, {">", OpGt}},
	{{"<<", OpShl}, {">>", OpShr}},
	{{"+", OpAdd}, {"-", OpSub}},
	{{"*", OpMul}},
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBin(0) }

func (p *parser) parseBin(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, cand := range binLevels[level] {
			if p.cur().kind == tokPunct && p.cur().text == cand.text {
				p.advance()
				rhs, err := p.parseBin(level + 1)
				if err != nil {
					return nil, err
				}
				lhs = BinOp{Op: cand.op, L: lhs, R: rhs}
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case p.accept("!"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnOp{Op: OpLNot, X: x}, nil
	case p.accept("-"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnOp{Op: OpNeg, X: x}, nil
	case p.accept("~"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnOp{Op: OpBitNot, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.advance()
		return Const{Value: t.val}, nil
	case t.kind == tokIdent:
		p.advance()
		return Ref{Name: t.text}, nil
	case p.accept("("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	}
	return nil, fmt.Errorf("%d:%d: expected expression, found %q", t.line, t.col, t.String())
}
