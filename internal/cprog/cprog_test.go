package cprog

import (
	"strings"
	"testing"
)

const sample = `
// sample program
shared x = 3;
shared m;

thread t1 {
    local r;
    lock(m);
    r = x;
    x = r + 1;
    unlock(m);
    if (x == 4) {
        x = 0;
    } else {
        x = x * 2;
    }
}

thread t2 {
    local c = 0;
    while (c < 2) {
        havoc x;
        assume(x >= 0);
        c = c + 1;
    }
    fence;
    atomic {
        x = x - 1;
    }
}

main {
    assert(!(x == 99));
}
`

func TestParseSample(t *testing.T) {
	p, err := Parse("sample", sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shared) != 2 || p.Shared[0].Name != "x" || p.Shared[0].Init != 3 {
		t.Fatalf("shared decls wrong: %+v", p.Shared)
	}
	if len(p.Threads) != 2 || p.Threads[0].Name != "t1" || p.Threads[1].Name != "t2" {
		t.Fatalf("threads wrong")
	}
	if len(p.Post) != 1 {
		t.Fatalf("post wrong")
	}
	if !p.HasLoops() {
		t.Fatal("sample has a loop")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	p1, err := Parse("sample", sample)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(p1)
	p2, err := Parse("sample2", text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if Format(p2) != text {
		t.Fatalf("format not a fixpoint:\n%s\nvs\n%s", text, Format(p2))
	}
}

func TestParsePrecedence(t *testing.T) {
	p, err := Parse("prec", `
shared a; shared b; shared c;
thread t { a = b + c * 2 == b && c < 1 || b != 0; }
`)
	if err != nil {
		t.Fatal(err)
	}
	got := FormatExpr(p.Threads[0].Body[0].(Assign).Rhs)
	want := "(((b + (c * 2)) == b) && (c < 1)) || (b != 0)"
	// Format parenthesises fully; compare structure via reformat.
	if !strings.Contains(got, "(c * 2)") {
		t.Errorf("* should bind tighter than +: %s", got)
	}
	if !strings.Contains(got, "|| (b != 0)") && !strings.HasSuffix(got, "(b != 0))") {
		t.Errorf("|| should bind loosest: %s", got)
	}
	_ = want
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"missing semicolon", "shared x\nthread t { }", "expected"},
		{"undeclared var", "thread t { x = 1; }", "undeclared"},
		{"bad token", "shared x; thread t { x = @; }", "expected expression"},
		{"unterminated comment", "/* oops", "unterminated"},
		{"unterminated block", "shared x; thread t { x = 1;", "end of input"},
		{"shadow shared", "shared x; thread t { local x; }", "shadows"},
		{"nonconst shift", "shared x; thread t { x = x << x; }", "shift"},
		{"dup shared", "shared x; shared x;", "twice"},
		{"dup thread", "shared x; thread t { } thread t { }", "twice"},
		{"lock nonshared", "shared x; thread t { local m; lock(m); }", "non-shared"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.name, tc.src)
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func countStmts(body []Stmt) int {
	n := 0
	for _, s := range body {
		n++
		switch st := s.(type) {
		case If:
			n += countStmts(st.Then) + countStmts(st.Else)
		case While:
			n += countStmts(st.Body)
		case Atomic:
			n += countStmts(st.Body)
		}
	}
	return n
}

func TestUnroll(t *testing.T) {
	p := &Program{
		Name:   "u",
		Shared: []SharedDecl{{Name: "x"}},
		Threads: []*Thread{{Name: "t", Body: []Stmt{
			While{Cond: Lt(V("x"), C(3)), Body: []Stmt{Set("x", Add(V("x"), C(1)))}},
		}}},
	}
	for bound := 0; bound <= 4; bound++ {
		u := Unroll(p, bound, UnwindAssume)
		if u.HasLoops() {
			t.Fatalf("bound %d: loops remain", bound)
		}
		if err := u.Validate(); err != nil {
			t.Fatalf("bound %d: %v", bound, err)
		}
		// Each unrolling level adds one If wrapping body+frontier.
		// Statement count grows linearly: bound * (body + if) + assume.
		n := countStmts(u.Threads[0].Body)
		want := 1 + 2*bound // assume + per-level (if + assign)
		if n != want {
			t.Fatalf("bound %d: %d stmts, want %d", bound, n, want)
		}
	}
	// Assert mode places an assert at the frontier.
	u := Unroll(p, 1, UnwindAssert)
	iff := u.Threads[0].Body[0].(If)
	if _, ok := iff.Then[len(iff.Then)-1].(Assert); !ok {
		t.Fatalf("want unwinding assertion at frontier, got %T", iff.Then[len(iff.Then)-1])
	}
	// The original program is untouched.
	if !p.HasLoops() {
		t.Fatal("input mutated by Unroll")
	}
}

func TestUnrollNested(t *testing.T) {
	p := &Program{
		Name:   "nest",
		Shared: []SharedDecl{{Name: "x"}},
		Threads: []*Thread{{Name: "t", Body: []Stmt{
			While{Cond: Lt(V("x"), C(2)), Body: []Stmt{
				While{Cond: Lt(V("x"), C(1)), Body: []Stmt{Set("x", Add(V("x"), C(1)))}},
				Set("x", Add(V("x"), C(1))),
			}},
		}}},
	}
	u := Unroll(p, 2, UnwindAssume)
	if u.HasLoops() {
		t.Fatal("nested loops remain")
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateExprForms(t *testing.T) {
	p := &Program{
		Name:   "v",
		Shared: []SharedDecl{{Name: "x"}},
		Threads: []*Thread{{Name: "t", Body: []Stmt{
			Set("x", BinOp{OpShl, V("x"), C(2)}),
			Assume{Cond: UnOp{OpLNot, V("x")}},
			If{Cond: V("x"), Then: []Stmt{Local{Name: "y", Init: V("x")}}},
		}}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalRedeclarationAllowed(t *testing.T) {
	// Loop unrolling duplicates local declarations; they must validate.
	p := &Program{
		Name:   "re",
		Shared: []SharedDecl{{Name: "x"}},
		Threads: []*Thread{{Name: "t", Body: []Stmt{
			Local{Name: "a", Init: C(1)},
			Local{Name: "a", Init: C(2)},
			Set("x", V("a")),
		}}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHexAndNegativeLiterals(t *testing.T) {
	p, err := Parse("hex", `
shared x = -5;
thread t { x = 0x1f; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shared[0].Init != -5 {
		t.Fatalf("negative init: %d", p.Shared[0].Init)
	}
	if c := p.Threads[0].Body[0].(Assign).Rhs.(Const); c.Value != 31 {
		t.Fatalf("hex literal: %d", c.Value)
	}
}

func TestCompoundAssignmentSugar(t *testing.T) {
	p, err := Parse("sugar", `
shared x = 1;
thread t {
    x += 2;
    x -= 1;
    x *= 3;
    x &= 7;
    x |= 8;
    x ^= 1;
    x++;
    x--;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []Op{OpAdd, OpSub, OpMul, OpBitAnd, OpBitOr, OpBitXor, OpAdd, OpSub}
	if len(p.Threads[0].Body) != len(wantOps) {
		t.Fatalf("got %d stmts", len(p.Threads[0].Body))
	}
	for i, s := range p.Threads[0].Body {
		bin := s.(Assign).Rhs.(BinOp)
		if bin.Op != wantOps[i] {
			t.Errorf("stmt %d: op %v, want %v", i, bin.Op, wantOps[i])
		}
		if ref, ok := bin.L.(Ref); !ok || ref.Name != "x" {
			t.Errorf("stmt %d: lhs of desugared op must be x", i)
		}
	}
	// Desugared text must re-parse.
	if _, err := Parse("resugar", Format(p)); err != nil {
		t.Fatal(err)
	}
}

func TestForLoopSugar(t *testing.T) {
	p, err := Parse("forloop", `
shared x;
thread t {
    local i;
    for (i = 0; i < 3; i++) {
        x += 1;
    }
    for (; x < 10;) {
        x += 2;
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	body := p.Threads[0].Body
	// local i; i = 0; while(...); while(...)
	if len(body) != 4 {
		t.Fatalf("got %d statements: %#v", len(body), body)
	}
	w1, ok := body[2].(While)
	if !ok {
		t.Fatalf("statement 2 is %T, want While", body[2])
	}
	// Body: x += 1 plus the spliced step i++.
	if len(w1.Body) != 2 {
		t.Fatalf("first loop body: %d stmts", len(w1.Body))
	}
	if _, ok := body[3].(While); !ok {
		t.Fatalf("statement 3 is %T, want While", body[3])
	}
	// Unrolling and validation must work on the desugared form.
	u := Unroll(p, 3, UnwindAssume)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}
