package cprog

import (
	"fmt"
	"strings"
)

// Format renders the program back to parseable source text.
func Format(p *Program) string {
	var b strings.Builder
	for _, d := range p.Shared {
		if d.Init != 0 {
			fmt.Fprintf(&b, "shared %s = %d;\n", d.Name, d.Init)
		} else {
			fmt.Fprintf(&b, "shared %s;\n", d.Name)
		}
	}
	for _, t := range p.Threads {
		fmt.Fprintf(&b, "\nthread %s {\n", t.Name)
		formatStmts(&b, t.Body, 1)
		b.WriteString("}\n")
	}
	if len(p.Post) > 0 {
		b.WriteString("\nmain {\n")
		formatStmts(&b, p.Post, 1)
		b.WriteString("}\n")
	}
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func formatStmts(b *strings.Builder, body []Stmt, depth int) {
	for _, s := range body {
		indent(b, depth)
		switch st := s.(type) {
		case Local:
			if st.Init != nil {
				fmt.Fprintf(b, "local %s = %s;\n", st.Name, FormatExpr(st.Init))
			} else {
				fmt.Fprintf(b, "local %s;\n", st.Name)
			}
		case Assign:
			fmt.Fprintf(b, "%s = %s;\n", st.Lhs, FormatExpr(st.Rhs))
		case Assume:
			fmt.Fprintf(b, "assume(%s);\n", FormatExpr(st.Cond))
		case Assert:
			fmt.Fprintf(b, "assert(%s);\n", FormatExpr(st.Cond))
		case If:
			fmt.Fprintf(b, "if (%s) {\n", FormatExpr(st.Cond))
			formatStmts(b, st.Then, depth+1)
			indent(b, depth)
			if len(st.Else) > 0 {
				b.WriteString("} else {\n")
				formatStmts(b, st.Else, depth+1)
				indent(b, depth)
			}
			b.WriteString("}\n")
		case While:
			fmt.Fprintf(b, "while (%s) {\n", FormatExpr(st.Cond))
			formatStmts(b, st.Body, depth+1)
			indent(b, depth)
			b.WriteString("}\n")
		case Lock:
			fmt.Fprintf(b, "lock(%s);\n", st.Mutex)
		case Unlock:
			fmt.Fprintf(b, "unlock(%s);\n", st.Mutex)
		case Fence:
			b.WriteString("fence;\n")
		case Atomic:
			b.WriteString("atomic {\n")
			formatStmts(b, st.Body, depth+1)
			indent(b, depth)
			b.WriteString("}\n")
		case Havoc:
			fmt.Fprintf(b, "havoc %s;\n", st.Name)
		}
	}
}

// FormatExpr renders an expression with full parenthesisation (always
// re-parseable; precedence-minimal output is not a goal).
func FormatExpr(e Expr) string {
	switch x := e.(type) {
	case Const:
		return fmt.Sprintf("%d", x.Value)
	case Ref:
		return x.Name
	case UnOp:
		return fmt.Sprintf("%s(%s)", x.Op, FormatExpr(x.X))
	case BinOp:
		return fmt.Sprintf("(%s %s %s)", FormatExpr(x.L), x.Op, FormatExpr(x.R))
	}
	return "?"
}
