package cprog

import (
	"fmt"
	"strconv"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokPunct // operators and delimiters, stored verbatim in text
)

type token struct {
	kind tokenKind
	text string
	val  int64
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokInt:
		return fmt.Sprintf("%d", t.val)
	default:
		return t.text
	}
}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (lx *lexer) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("%d:%d: %s", lx.line, lx.col, fmt.Sprintf(format, args...))
}

func (lx *lexer) peek() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peek2() rune {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *lexer) advance() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		r := lx.peek()
		switch {
		case unicode.IsSpace(r):
			lx.advance()
		case r == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case r == '/' && lx.peek2() == '*':
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return lx.errorf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// twoCharPuncts are the multi-rune operators, longest match first.
var twoCharPuncts = []string{
	"==", "!=", "<=", ">=", "<<", ">>", "&&", "||",
	"+=", "-=", "*=", "&=", "|=", "^=", "++", "--",
}

func (lx *lexer) next() (token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	r := lx.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		start := lx.pos
		for lx.pos < len(lx.src) {
			c := lx.peek()
			if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
				lx.advance()
			} else {
				break
			}
		}
		return token{kind: tokIdent, text: string(lx.src[start:lx.pos]), line: line, col: col}, nil
	case unicode.IsDigit(r):
		start := lx.pos
		for lx.pos < len(lx.src) && (unicode.IsDigit(lx.peek()) || lx.peek() == 'x' || lx.peek() == 'X' ||
			(lx.peek() >= 'a' && lx.peek() <= 'f') || (lx.peek() >= 'A' && lx.peek() <= 'F')) {
			lx.advance()
		}
		text := string(lx.src[start:lx.pos])
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return token{}, fmt.Errorf("%d:%d: bad integer literal %q", line, col, text)
		}
		return token{kind: tokInt, val: v, line: line, col: col}, nil
	default:
		if lx.pos+1 < len(lx.src) {
			two := string(lx.src[lx.pos : lx.pos+2])
			for _, p := range twoCharPuncts {
				if two == p {
					lx.advance()
					lx.advance()
					return token{kind: tokPunct, text: p, line: line, col: col}, nil
				}
			}
		}
		lx.advance()
		return token{kind: tokPunct, text: string(r), line: line, col: col}, nil
	}
}

func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
