package cprog

// UnrollMode selects what happens at the unrolling frontier of a loop.
type UnrollMode int

// Unrolling modes.
const (
	// UnwindAssume adds assume(!cond) after the last unrolled iteration:
	// executions needing more iterations are cut off (the standard BMC
	// under-approximation; "correct under unrolling bound k" in the paper).
	UnwindAssume UnrollMode = iota
	// UnwindAssert adds assert(!cond) instead, so exceeding the bound is
	// itself reported as a violation (CBMC's --unwinding-assertions).
	UnwindAssert
)

// Unroll returns a loop-free copy of the program in which every while loop
// is replaced by bound-many nested if statements (§5 "Experimental Setup").
// The input program is not modified.
func Unroll(p *Program, bound int, mode UnrollMode) *Program {
	out := &Program{Name: p.Name, Shared: append([]SharedDecl(nil), p.Shared...)}
	for _, t := range p.Threads {
		out.Threads = append(out.Threads, &Thread{
			Name: t.Name,
			Body: unrollStmts(t.Body, bound, mode),
		})
	}
	out.Post = unrollStmts(p.Post, bound, mode)
	return out
}

func unrollStmts(body []Stmt, bound int, mode UnrollMode) []Stmt {
	out := make([]Stmt, 0, len(body))
	for _, s := range body {
		switch st := s.(type) {
		case While:
			out = append(out, unrollLoop(st, bound, mode))
		case If:
			out = append(out, If{
				Cond: st.Cond,
				Then: unrollStmts(st.Then, bound, mode),
				Else: unrollStmts(st.Else, bound, mode),
			})
		case Atomic:
			out = append(out, Atomic{Body: unrollStmts(st.Body, bound, mode)})
		default:
			out = append(out, s)
		}
	}
	return out
}

func unrollLoop(w While, bound int, mode UnrollMode) Stmt {
	// Innermost frontier: assume/assert the loop exits.
	var frontier Stmt
	switch mode {
	case UnwindAssert:
		frontier = Assert{Cond: LNot(w.Cond)}
	default:
		frontier = Assume{Cond: LNot(w.Cond)}
	}
	current := []Stmt{frontier}
	body := unrollStmts(w.Body, bound, mode)
	for i := 0; i < bound; i++ {
		iter := make([]Stmt, 0, len(body)+1)
		iter = append(iter, body...)
		iter = append(iter, current...)
		current = []Stmt{If{Cond: w.Cond, Then: iter}}
	}
	return current[0]
}
