// Package cprog defines a small concurrent imperative language — the
// fragment of C that SV-COMP ConcurrencySafety benchmarks exercise: shared
// and thread-local integer variables, assignments, assume/assert, if/while,
// mutex lock/unlock, atomic sections, memory fences and nondeterministic
// havoc. Programs can be built programmatically (the benchmark generators do
// this) or parsed from a textual form (see parser.go); loops are removed by
// bounded unrolling (see unroll.go) before encoding.
package cprog

import "fmt"

// Program is a multi-threaded program: shared variable declarations with
// initial values, a set of threads started together by main, and an optional
// post block that main executes after joining all threads (where the paper's
// Figure 2 places its final assertion).
type Program struct {
	Name    string
	Shared  []SharedDecl
	Threads []*Thread
	// Post runs in the main thread after all threads have been joined.
	Post []Stmt
}

// SharedDecl declares a shared variable with its initial value.
type SharedDecl struct {
	Name string
	Init int64
}

// Thread is a named sequence of statements executed concurrently.
type Thread struct {
	Name string
	Body []Stmt
}

// Stmt is a program statement.
type Stmt interface{ stmt() }

// Assign writes Rhs to the (shared or local) variable Lhs.
type Assign struct {
	Lhs string
	Rhs Expr
}

// Local declares a thread-local variable, optionally initialised (nil Init
// means zero).
type Local struct {
	Name string
	Init Expr
}

// Assume constrains executions to those satisfying Cond.
type Assume struct{ Cond Expr }

// Assert claims Cond holds; a reachable violation makes the program unsafe.
type Assert struct{ Cond Expr }

// If branches on Cond.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// While loops on Cond; removed by bounded unrolling before encoding.
type While struct {
	Cond Expr
	Body []Stmt
}

// Lock acquires the mutex variable (blocking acquire modelled as an atomic
// test-and-set whose success is assumed).
type Lock struct{ Mutex string }

// Unlock releases the mutex variable.
type Unlock struct{ Mutex string }

// Fence is a full memory fence: it restores all program order across it.
type Fence struct{}

// Atomic executes Body without interference on the variables it accesses.
type Atomic struct{ Body []Stmt }

// Havoc assigns a nondeterministic value to a variable.
type Havoc struct{ Name string }

func (Assign) stmt() {}
func (Local) stmt()  {}
func (Assume) stmt() {}
func (Assert) stmt() {}
func (If) stmt()     {}
func (While) stmt()  {}
func (Lock) stmt()   {}
func (Unlock) stmt() {}
func (Fence) stmt()  {}
func (Atomic) stmt() {}
func (Havoc) stmt()  {}

// Expr is an integer-valued expression. Comparisons and logical operators
// yield 0 or 1; conditions treat any non-zero value as true.
type Expr interface{ expr() }

// Const is an integer literal.
type Const struct{ Value int64 }

// Ref reads a variable (shared or local).
type Ref struct{ Name string }

// BinOp applies a binary operator.
type BinOp struct {
	Op   Op
	L, R Expr
}

// UnOp applies a unary operator.
type UnOp struct {
	Op Op
	X  Expr
}

func (Const) expr() {}
func (Ref) expr()   {}
func (BinOp) expr() {}
func (UnOp) expr()  {}

// Op enumerates operators.
type Op int

// Operators.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpBitAnd
	OpBitOr
	OpBitXor
	OpShl // right operand must be a constant
	OpShr // right operand must be a constant (logical shift)
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLAnd
	OpLOr
	OpLNot // unary
	OpNeg  // unary
	OpBitNot
)

// String renders the operator in source syntax.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpBitAnd:
		return "&"
	case OpBitOr:
		return "|"
	case OpBitXor:
		return "^"
	case OpShl:
		return "<<"
	case OpShr:
		return ">>"
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpLAnd:
		return "&&"
	case OpLOr:
		return "||"
	case OpLNot:
		return "!"
	case OpNeg:
		return "-"
	case OpBitNot:
		return "~"
	}
	return "?"
}

// Convenience constructors used heavily by the benchmark generators.

// C returns a constant expression.
func C(v int64) Expr { return Const{v} }

// V returns a variable reference.
func V(name string) Expr { return Ref{name} }

// Add returns l + r.
func Add(l, r Expr) Expr { return BinOp{OpAdd, l, r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return BinOp{OpSub, l, r} }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return BinOp{OpMul, l, r} }

// Eq returns l == r.
func Eq(l, r Expr) Expr { return BinOp{OpEq, l, r} }

// Ne returns l != r.
func Ne(l, r Expr) Expr { return BinOp{OpNe, l, r} }

// Lt returns l < r.
func Lt(l, r Expr) Expr { return BinOp{OpLt, l, r} }

// Le returns l <= r.
func Le(l, r Expr) Expr { return BinOp{OpLe, l, r} }

// Gt returns l > r.
func Gt(l, r Expr) Expr { return BinOp{OpGt, l, r} }

// Ge returns l >= r.
func Ge(l, r Expr) Expr { return BinOp{OpGe, l, r} }

// LAnd returns l && r.
func LAnd(l, r Expr) Expr { return BinOp{OpLAnd, l, r} }

// LOr returns l || r.
func LOr(l, r Expr) Expr { return BinOp{OpLOr, l, r} }

// LNot returns !x.
func LNot(x Expr) Expr { return UnOp{OpLNot, x} }

// Set returns the assignment statement lhs = rhs.
func Set(lhs string, rhs Expr) Stmt { return Assign{lhs, rhs} }

// Validate checks structural well-formedness: every referenced variable is a
// declared shared variable or a local declared earlier in the same thread,
// and shift amounts are constants.
func (p *Program) Validate() error {
	shared := map[string]bool{}
	for _, d := range p.Shared {
		if shared[d.Name] {
			return fmt.Errorf("%s: shared variable %q declared twice", p.Name, d.Name)
		}
		shared[d.Name] = true
	}
	seen := map[string]bool{}
	for _, t := range p.Threads {
		if seen[t.Name] {
			return fmt.Errorf("%s: thread %q declared twice", p.Name, t.Name)
		}
		seen[t.Name] = true
		locals := map[string]bool{}
		if err := validateStmts(t.Body, shared, locals, t.Name); err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
	}
	locals := map[string]bool{}
	if err := validateStmts(p.Post, shared, locals, "main"); err != nil {
		return fmt.Errorf("%s: %w", p.Name, err)
	}
	return nil
}

func validateStmts(body []Stmt, shared, locals map[string]bool, where string) error {
	checkVar := func(name string) error {
		if !shared[name] && !locals[name] {
			return fmt.Errorf("%s: undeclared variable %q", where, name)
		}
		return nil
	}
	var checkExpr func(e Expr) error
	checkExpr = func(e Expr) error {
		switch x := e.(type) {
		case Const:
			return nil
		case Ref:
			return checkVar(x.Name)
		case UnOp:
			return checkExpr(x.X)
		case BinOp:
			if x.Op == OpShl || x.Op == OpShr {
				if _, ok := x.R.(Const); !ok {
					return fmt.Errorf("%s: shift amount must be a constant", where)
				}
			}
			if err := checkExpr(x.L); err != nil {
				return err
			}
			return checkExpr(x.R)
		}
		return fmt.Errorf("%s: unknown expression %T", where, e)
	}
	for _, s := range body {
		switch st := s.(type) {
		case Local:
			// Re-declaring a local reinitialises it (loop unrolling copies
			// bodies, so this must be legal); shadowing a shared variable is
			// still an error.
			if shared[st.Name] {
				return fmt.Errorf("%s: local %q shadows a shared variable", where, st.Name)
			}
			if st.Init != nil {
				if err := checkExpr(st.Init); err != nil {
					return err
				}
			}
			locals[st.Name] = true
		case Assign:
			if err := checkVar(st.Lhs); err != nil {
				return err
			}
			if err := checkExpr(st.Rhs); err != nil {
				return err
			}
		case Assume:
			if err := checkExpr(st.Cond); err != nil {
				return err
			}
		case Assert:
			if err := checkExpr(st.Cond); err != nil {
				return err
			}
		case If:
			if err := checkExpr(st.Cond); err != nil {
				return err
			}
			if err := validateStmts(st.Then, shared, locals, where); err != nil {
				return err
			}
			if err := validateStmts(st.Else, shared, locals, where); err != nil {
				return err
			}
		case While:
			if err := checkExpr(st.Cond); err != nil {
				return err
			}
			if err := validateStmts(st.Body, shared, locals, where); err != nil {
				return err
			}
		case Lock:
			if !shared[st.Mutex] {
				return fmt.Errorf("%s: lock on non-shared %q", where, st.Mutex)
			}
		case Unlock:
			if !shared[st.Mutex] {
				return fmt.Errorf("%s: unlock on non-shared %q", where, st.Mutex)
			}
		case Fence:
		case Atomic:
			if err := validateStmts(st.Body, shared, locals, where); err != nil {
				return err
			}
		case Havoc:
			if err := checkVar(st.Name); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%s: unknown statement %T", where, s)
		}
	}
	return nil
}

// HasLoops reports whether the program contains any While statement.
func (p *Program) HasLoops() bool {
	var scan func(body []Stmt) bool
	scan = func(body []Stmt) bool {
		for _, s := range body {
			switch st := s.(type) {
			case While:
				return true
			case If:
				if scan(st.Then) || scan(st.Else) {
					return true
				}
			case Atomic:
				if scan(st.Body) {
					return true
				}
			}
		}
		return false
	}
	for _, t := range p.Threads {
		if scan(t.Body) {
			return true
		}
	}
	return scan(p.Post)
}
