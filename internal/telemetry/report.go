package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// interferenceClass reports whether a decision class string is an
// interference (rf/ws) class.
func interferenceClass(c string) bool {
	return c == "rf-external" || c == "rf-internal" || c == "ws"
}

// FracBucket is one bucket of the interference-decision-fraction series:
// of the decisions with ordinal in [Lo, Hi], Interference were rf/ws.
type FracBucket struct {
	Lo, Hi       uint64
	Decisions    uint64
	Interference uint64
}

// Fraction returns the interference share of the bucket (0 when empty).
func (b FracBucket) Fraction() float64 {
	if b.Decisions == 0 {
		return 0
	}
	return float64(b.Interference) / float64(b.Decisions)
}

// RateBucket is one bucket of the conflict timeline: Conflicts conflicts
// occurred in the [Start, End) slice of solve time.
type RateBucket struct {
	Start, End time.Duration
	Conflicts  uint64
}

// Rate returns conflicts per second in the bucket.
func (b RateBucket) Rate() float64 {
	w := (b.End - b.Start).Seconds()
	if w <= 0 {
		return 0
	}
	return float64(b.Conflicts) / w
}

// Report is the analysis of one solver trace: the paper-style search
// introspection (interference-decision fraction over decision index —
// the Figure 6–8 story — conflict-rate timeline, per-class decision
// histogram) plus the exactness cross-check against the solver's Stats.
type Report struct {
	// Meta is the opening event (nil if the trace lacks one).
	Meta *Event
	// Summary is the closing event with exact counts and solver stats.
	Summary *Event
	// Sampled is true when only every Nth event was recorded (Meta.Every
	// > 1): the bucket series are then estimates, while Summary counts
	// stay exact.
	Sampled bool

	// Replayed are the counts reconstructed purely from the event stream.
	// With sampling off they must equal both Summary.Counts and
	// Summary.Stats exactly.
	Replayed Counts

	// DecisionFraction buckets decisions by ordinal and reports the rf/ws
	// share per bucket.
	DecisionFraction []FracBucket
	// ConflictTimeline buckets conflicts over solve time.
	ConflictTimeline []RateBucket
	// LBDHist counts learnt clauses by LBD (from sampled conflict events).
	LBDHist map[int32]uint64
	// Spans are the phase timings recorded in the trace, in order.
	Spans []Event
}

// AnalyzeTrace builds a Report from a parsed event stream. buckets bounds
// the resolution of the two series (≥1; 20 is a good default).
func AnalyzeTrace(events []Event, buckets int) (*Report, error) {
	if buckets < 1 {
		buckets = 1
	}
	rep := &Report{LBDHist: map[int32]uint64{}}
	var decisions, conflicts []Event
	var lastSeq uint64
	for i := range events {
		ev := &events[i]
		if ev.Seq != 0 {
			if ev.Seq <= lastSeq {
				return nil, fmt.Errorf("telemetry: event seq %d after %d: trace interleaved or truncated", ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
		}
		switch ev.Kind {
		case KindMeta:
			rep.Meta = ev
			rep.Sampled = ev.Every > 1
		case KindSummary:
			rep.Summary = ev
		case KindDecision:
			rep.Replayed.Decisions++
			decisions = append(decisions, *ev)
		case KindProp:
			rep.Replayed.Propagations += ev.N
		case KindTheoryProp:
			rep.Replayed.TheoryProps += ev.N
		case KindConflict:
			rep.Replayed.Conflicts++
			conflicts = append(conflicts, *ev)
			if ev.Size > 0 {
				rep.LBDHist[ev.LBD]++
			}
		case KindTheoryConflict:
			rep.Replayed.TheoryConfl++
		case KindRestart:
			rep.Replayed.Restarts++
		case KindReduce:
			rep.Replayed.Reductions++
		case KindInprocess:
			rep.Replayed.Inprocessings++
			rep.Replayed.Subsumed += uint64(ev.Subsumed)
			rep.Replayed.Strengthened += uint64(ev.Strengthened)
		case KindSpan:
			rep.Spans = append(rep.Spans, *ev)
		}
	}
	rep.Replayed.ByClass = map[string]uint64{}
	rep.Replayed.BySource = map[string]uint64{}
	for _, d := range decisions {
		rep.Replayed.ByClass[d.Class]++
		rep.Replayed.BySource[d.Source]++
	}

	// Interference fraction over decision index. Bucket by the exact
	// decision ordinal (Idx), which sampling preserves.
	if n := len(decisions); n > 0 {
		maxIdx := decisions[n-1].Idx
		if maxIdx == 0 {
			maxIdx = uint64(n)
		}
		per := (maxIdx + uint64(buckets) - 1) / uint64(buckets)
		if per == 0 {
			per = 1
		}
		nb := int((maxIdx + per - 1) / per)
		fb := make([]FracBucket, nb)
		for i := range fb {
			fb[i].Lo = uint64(i)*per + 1
			fb[i].Hi = uint64(i+1) * per
		}
		for _, d := range decisions {
			idx := d.Idx
			if idx == 0 {
				continue
			}
			b := int((idx - 1) / per)
			fb[b].Decisions++
			if interferenceClass(d.Class) {
				fb[b].Interference++
			}
		}
		rep.DecisionFraction = fb
	}

	// Conflict-rate timeline over elapsed solve time.
	if n := len(conflicts); n > 0 {
		maxT := conflicts[n-1].TNS
		if maxT <= 0 {
			maxT = 1
		}
		per := (maxT + int64(buckets) - 1) / int64(buckets)
		if per == 0 {
			per = 1
		}
		nb := int((maxT + per - 1) / per)
		rb := make([]RateBucket, nb)
		for i := range rb {
			rb[i].Start = time.Duration(int64(i) * per)
			rb[i].End = time.Duration(int64(i+1) * per)
		}
		for _, c := range conflicts {
			b := int(c.TNS / per)
			if b >= nb {
				b = nb - 1
			}
			rb[b].Conflicts++
		}
		rep.ConflictTimeline = rb
	}
	return rep, nil
}

// CrossCheck verifies that the trace is exact: the summary's counts must
// equal the solver's Stats for the traced solve, and — when sampling was
// off — the counts replayed from the raw event stream must match too. A
// non-nil error means events were lost, duplicated or mis-batched: a
// solver/tracer bug.
func (r *Report) CrossCheck() error {
	if r.Summary == nil || r.Summary.Counts == nil || r.Summary.Stats == nil {
		return fmt.Errorf("telemetry: trace has no summary record (truncated trace?)")
	}
	c, st := r.Summary.Counts, r.Summary.Stats
	mismatch := func(what string, ev, solver uint64) error {
		return fmt.Errorf("telemetry: %s mismatch: trace says %d, solver says %d", what, ev, solver)
	}
	switch {
	case c.Decisions != st.Decisions:
		return mismatch("decisions", c.Decisions, st.Decisions)
	case c.Propagations != st.Propagations:
		return mismatch("propagations", c.Propagations, st.Propagations)
	case c.TheoryProps != st.TheoryProps:
		return mismatch("theory propagations", c.TheoryProps, st.TheoryProps)
	case c.Conflicts != st.Conflicts:
		return mismatch("conflicts", c.Conflicts, st.Conflicts)
	case c.TheoryConfl != st.TheoryConfl:
		return mismatch("theory conflicts", c.TheoryConfl, st.TheoryConfl)
	case c.Restarts != st.Restarts:
		return mismatch("restarts", c.Restarts, st.Restarts)
	case c.Inprocessings != st.Inprocessings:
		return mismatch("inprocessings", c.Inprocessings, st.Inprocessings)
	case c.Subsumed != st.SubsumedCls:
		return mismatch("subsumed clauses", c.Subsumed, st.SubsumedCls)
	case c.Strengthened != st.StrengthenedCls:
		return mismatch("strengthened clauses", c.Strengthened, st.StrengthenedCls)
	}
	if !r.Sampled {
		rp := r.Replayed
		switch {
		case rp.Decisions != c.Decisions:
			return mismatch("replayed decisions", rp.Decisions, c.Decisions)
		case rp.Propagations != c.Propagations:
			return mismatch("replayed propagations", rp.Propagations, c.Propagations)
		case rp.TheoryProps != c.TheoryProps:
			return mismatch("replayed theory propagations", rp.TheoryProps, c.TheoryProps)
		case rp.Conflicts != c.Conflicts:
			return mismatch("replayed conflicts", rp.Conflicts, c.Conflicts)
		case rp.TheoryConfl != c.TheoryConfl:
			return mismatch("replayed theory conflicts", rp.TheoryConfl, c.TheoryConfl)
		case rp.Restarts != c.Restarts:
			return mismatch("replayed restarts", rp.Restarts, c.Restarts)
		case rp.Inprocessings != c.Inprocessings:
			return mismatch("replayed inprocessings", rp.Inprocessings, c.Inprocessings)
		case rp.Subsumed != c.Subsumed:
			return mismatch("replayed subsumed clauses", rp.Subsumed, c.Subsumed)
		case rp.Strengthened != c.Strengthened:
			return mismatch("replayed strengthened clauses", rp.Strengthened, c.Strengthened)
		}
	}
	return nil
}

// FormatHeader renders the trace identification line from the meta event:
// task, strategy, model and sampling rate, plus — on version-2 traces — the
// schema version and the stable run id that joins the trace to metric
// labels, slog lines and the /runs surface. Empty when the trace has no
// meta record.
func (r *Report) FormatHeader() string {
	if r.Meta == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: task=%s strategy=%s model=%s sample=1/%d",
		r.Meta.Task, r.Meta.Strategy, r.Meta.Model, max64(1, int64(r.Meta.Every)))
	if r.Meta.Version > 0 {
		fmt.Fprintf(&b, " ver=%d", r.Meta.Version)
	}
	if r.Meta.Run != "" {
		fmt.Fprintf(&b, " run=%s", r.Meta.Run)
	}
	b.WriteString("\n")
	return b.String()
}

// FormatSpans renders the trace's phase timings. Version-2 traces carry
// hierarchical span events (sid, par, start_ns), which render as an
// indented tree with each span's start offset from the run origin; legacy
// version-0 spans (sid absent) render as the original flat name+duration
// list. A mixed trace renders the tree first, then any flat spans.
func (r *Report) FormatSpans() string {
	if len(r.Spans) == 0 {
		return ""
	}
	var tree, flat []Event
	for _, sp := range r.Spans {
		if sp.SpanID > 0 {
			tree = append(tree, sp)
		} else {
			flat = append(flat, sp)
		}
	}
	var b strings.Builder
	if len(tree) > 0 {
		b.WriteString("span tree (start offset, duration):\n")
		children := map[int][]Event{}
		known := map[int]bool{}
		for _, sp := range tree {
			known[sp.SpanID] = true
		}
		for _, sp := range tree {
			par := sp.ParID
			// A dangling parent id (truncated trace, or a span whose
			// parent was sampled away) promotes the span to a root
			// rather than dropping it.
			if !known[par] || par == sp.SpanID {
				par = 0
			}
			children[par] = append(children[par], sp)
		}
		for _, kids := range children { //mapiter:ok order restored by per-slice sort below
			sort.Slice(kids, func(i, j int) bool {
				if kids[i].StartNS != kids[j].StartNS {
					return kids[i].StartNS < kids[j].StartNS
				}
				return kids[i].SpanID < kids[j].SpanID
			})
		}
		// visited guards against parent-id cycles in corrupt traces.
		visited := map[int]bool{}
		var render func(id, depth int)
		render = func(id, depth int) {
			for _, sp := range children[id] {
				if visited[sp.SpanID] {
					continue
				}
				visited[sp.SpanID] = true
				fmt.Fprintf(&b, "  %-30s %10v %12v\n",
					strings.Repeat("  ", depth)+sp.Name,
					time.Duration(sp.StartNS).Round(time.Microsecond),
					time.Duration(sp.DurNS).Round(time.Microsecond))
				render(sp.SpanID, depth+1)
			}
		}
		render(0, 0)
	}
	if len(flat) > 0 {
		if len(tree) > 0 {
			b.WriteString("flat phase timings:\n")
		} else {
			b.WriteString("phase timings:\n")
		}
		for _, sp := range flat {
			fmt.Fprintf(&b, "  %-16s %v\n", sp.Name, time.Duration(sp.DurNS).Round(time.Microsecond))
		}
	}
	return b.String()
}

// bar renders a proportional ASCII bar of width w for value v in [0, max].
func bar(v, max float64, w int) string {
	if max <= 0 {
		return ""
	}
	n := int(v / max * float64(w))
	if n > w {
		n = w
	}
	return strings.Repeat("#", n)
}

// Format renders the report for terminals.
func (r *Report) Format() string {
	var b strings.Builder
	b.WriteString(r.FormatHeader())
	if r.Summary != nil && r.Summary.Counts != nil {
		c := r.Summary.Counts
		fmt.Fprintf(&b, "totals: %d decisions, %d propagations (%d theory), %d conflicts (%d theory), %d restarts, %d reductions\n",
			c.Decisions, c.Propagations, c.TheoryProps, c.Conflicts, c.TheoryConfl, c.Restarts, c.Reductions)
		if c.Inprocessings > 0 {
			fmt.Fprintf(&b, "inprocessing: %d rounds, %d clauses subsumed, %d strengthened\n",
				c.Inprocessings, c.Subsumed, c.Strengthened)
		}
	}
	if len(r.Spans) > 0 {
		b.WriteString("\n")
		b.WriteString(r.FormatSpans())
	}

	if r.Summary != nil && r.Summary.Counts != nil && len(r.Summary.Counts.ByClass) > 0 {
		b.WriteString("\ndecisions by class:\n")
		classes := make([]string, 0, len(r.Summary.Counts.ByClass))
		var maxN uint64
		for cls, n := range r.Summary.Counts.ByClass {
			classes = append(classes, cls)
			if n > maxN {
				maxN = n
			}
		}
		sort.Strings(classes)
		for _, cls := range classes {
			n := r.Summary.Counts.ByClass[cls]
			fmt.Fprintf(&b, "  %-12s %8d %s\n", cls, n, bar(float64(n), float64(maxN), 40))
		}
		b.WriteString("decisions by source:\n")
		srcs := make([]string, 0, len(r.Summary.Counts.BySource))
		for src := range r.Summary.Counts.BySource {
			srcs = append(srcs, src)
		}
		sort.Strings(srcs)
		for _, src := range srcs {
			fmt.Fprintf(&b, "  %-12s %8d\n", src, r.Summary.Counts.BySource[src])
		}
	}

	if len(r.DecisionFraction) > 0 {
		b.WriteString("\ninterference-decision fraction over decision index (the Fig. 6-8 story):\n")
		for _, fb := range r.DecisionFraction {
			fmt.Fprintf(&b, "  [%6d..%6d] %5.1f%% %s\n",
				fb.Lo, fb.Hi, 100*fb.Fraction(), bar(fb.Fraction(), 1, 40))
		}
	}

	if len(r.ConflictTimeline) > 0 {
		b.WriteString("\nconflict rate over solve time:\n")
		var maxRate float64
		for _, rb := range r.ConflictTimeline {
			if rate := rb.Rate(); rate > maxRate {
				maxRate = rate
			}
		}
		for _, rb := range r.ConflictTimeline {
			fmt.Fprintf(&b, "  [%10v..%10v] %8.0f/s %s\n",
				rb.Start.Round(time.Microsecond), rb.End.Round(time.Microsecond),
				rb.Rate(), bar(rb.Rate(), maxRate, 40))
		}
	}

	if len(r.LBDHist) > 0 {
		b.WriteString("\nlearnt-clause LBD histogram:\n")
		lbds := make([]int32, 0, len(r.LBDHist))
		var maxN uint64
		for lbd, n := range r.LBDHist {
			lbds = append(lbds, lbd)
			if n > maxN {
				maxN = n
			}
		}
		sort.Slice(lbds, func(i, j int) bool { return lbds[i] < lbds[j] })
		for _, lbd := range lbds {
			n := r.LBDHist[lbd]
			fmt.Fprintf(&b, "  lbd=%-4d %8d %s\n", lbd, n, bar(float64(n), float64(maxN), 40))
		}
	}
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
