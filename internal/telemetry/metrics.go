package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zpre/internal/sat"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (may go up and down).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bitlen(v) == i, i.e. [2^(i-1), 2^i).
const histBuckets = 64

// Histogram is a lock-free power-of-two histogram.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)%histBuckets].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Merge atomically folds other's observations into h. Each bucket (and the
// count/sum pair) is added with one atomic each, so concurrent Observe calls
// on either histogram are never lost; a Snapshot taken mid-merge may see a
// partially merged state, which is the same guarantee Snapshot already gives
// for concurrent Observe.
func (h *Histogram) Merge(other *Histogram) {
	for i := range other.buckets {
		if n := other.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
}

// ObserveDuration records a duration in microseconds, the standard unit for
// the registry's latency histograms (sub-microsecond observations land in
// the zero bucket).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d / time.Microsecond))
}

// HistogramSnapshot is a point-in-time histogram reading.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets map[int]uint64 // bit-length → count, zero buckets omitted
}

// snapshot reads the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: map[int]uint64{},
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			hs.Buckets[i] = n
		}
	}
	return hs
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Registry is a names-to-metrics table. Metric creation takes a lock;
// updates on the returned handles are lock-free atomics, so hot paths
// should hold on to the handle rather than re-looking it up.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Merge folds every metric of other into r, creating missing metrics on
// first use. Counters and histograms add; gauges take other's value (a
// merged gauge is a last-writer snapshot, not a sum). Workers can therefore
// batch into a private registry and fold it into the shared one at the end
// of a run without losing concurrent updates on either side.
func (r *Registry) Merge(other *Registry) {
	other.mu.RLock()
	defer other.mu.RUnlock()
	for name, c := range other.counters {
		r.Counter(name).Add(c.Value())
	}
	for name, g := range other.gauges {
		r.Gauge(name).Set(g.Value())
	}
	for name, h := range other.hists {
		r.Histogram(name).Merge(h)
	}
}

// Snapshot is a consistent-enough point-in-time reading of every metric
// (individual values are atomic; the set is read under the registry lock).
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot reads every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.snapshot()
	}
	return snap
}

// Format renders the snapshot as sorted "name value" lines.
func (s Snapshot) Format() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%s count=%d sum=%d mean=%.1f\n", n, h.Count, h.Sum, h.Mean())
	}
	return b.String()
}

// MetricsTracer implements sat.Tracer by incrementing registry counters, so
// a live progress display can watch search rates across concurrent workers.
// Conflicts, decisions and restarts increment one shared atomic each;
// propagations are batched locally and flushed every flushEvery events (and
// on Flush) to keep the hot path off the shared cache line.
type MetricsTracer struct {
	decisions *Counter
	conflicts *Counter
	restarts  *Counter
	props     *Counter
	lbd       *Histogram

	localProps uint64
}

const flushEvery = 4096

// NewMetricsTracer binds a tracer to reg under the standard metric names
// (solver_decisions, solver_conflicts, solver_restarts,
// solver_propagations) plus the solver_lbd histogram, which collects the
// learnt-clause LBD distribution across every worker's conflicts.
func NewMetricsTracer(reg *Registry) *MetricsTracer {
	return &MetricsTracer{
		decisions: reg.Counter("solver_decisions"),
		conflicts: reg.Counter("solver_conflicts"),
		restarts:  reg.Counter("solver_restarts"),
		props:     reg.Counter("solver_propagations"),
		lbd:       reg.Histogram("solver_lbd"),
	}
}

// Decision implements sat.Tracer.
func (m *MetricsTracer) Decision(_ sat.Lit, _ int, _ sat.DecisionSource) { m.decisions.Inc() }

// Propagation implements sat.Tracer.
func (m *MetricsTracer) Propagation(sat.Lit) {
	m.localProps++
	if m.localProps >= flushEvery {
		m.props.Add(m.localProps)
		m.localProps = 0
	}
}

// TheoryPropagation implements sat.Tracer.
func (m *MetricsTracer) TheoryPropagation(sat.Lit) {}

// Conflict implements sat.Tracer.
func (m *MetricsTracer) Conflict(info sat.ConflictInfo) {
	m.conflicts.Inc()
	if info.LBD > 0 {
		m.lbd.Observe(uint64(info.LBD))
	}
}

// TheoryConflict implements sat.Tracer.
func (m *MetricsTracer) TheoryConflict(int) {}

// Restart implements sat.Tracer.
func (m *MetricsTracer) Restart(uint64) { m.restarts.Inc() }

// ReduceDB implements sat.Tracer.
func (m *MetricsTracer) ReduceDB(int, int) {}

// Inprocess implements sat.Tracer.
func (m *MetricsTracer) Inprocess(int, int) {}

// Flush pushes locally batched counts to the registry.
func (m *MetricsTracer) Flush() {
	if m.localProps > 0 {
		m.props.Add(m.localProps)
		m.localProps = 0
	}
}

// MultiTracer fans solver callbacks out to several tracers.
type MultiTracer []sat.Tracer

// Decision implements sat.Tracer.
func (m MultiTracer) Decision(l sat.Lit, level int, src sat.DecisionSource) {
	for _, t := range m {
		t.Decision(l, level, src)
	}
}

// Propagation implements sat.Tracer.
func (m MultiTracer) Propagation(l sat.Lit) {
	for _, t := range m {
		t.Propagation(l)
	}
}

// TheoryPropagation implements sat.Tracer.
func (m MultiTracer) TheoryPropagation(l sat.Lit) {
	for _, t := range m {
		t.TheoryPropagation(l)
	}
}

// Conflict implements sat.Tracer.
func (m MultiTracer) Conflict(info sat.ConflictInfo) {
	for _, t := range m {
		t.Conflict(info)
	}
}

// TheoryConflict implements sat.Tracer.
func (m MultiTracer) TheoryConflict(size int) {
	for _, t := range m {
		t.TheoryConflict(size)
	}
}

// Restart implements sat.Tracer.
func (m MultiTracer) Restart(n uint64) {
	for _, t := range m {
		t.Restart(n)
	}
}

// ReduceDB implements sat.Tracer.
func (m MultiTracer) ReduceDB(kept, deleted int) {
	for _, t := range m {
		t.ReduceDB(kept, deleted)
	}
}

// Inprocess implements sat.Tracer.
func (m MultiTracer) Inprocess(subsumed, strengthened int) {
	for _, t := range m {
		t.Inprocess(subsumed, strengthened)
	}
}

// Combine returns a tracer that drives every non-nil argument: nil when all
// are nil, the single tracer when exactly one is non-nil, a MultiTracer
// otherwise.
func Combine(tracers ...sat.Tracer) sat.Tracer {
	var live MultiTracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
