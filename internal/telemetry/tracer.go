package telemetry

import (
	"time"

	"zpre/internal/sat"
)

// TracerOptions configures a SolverTracer.
type TracerOptions struct {
	// Classes maps SAT variables to their class string (rf-external,
	// rf-internal, ws, ord, ssa, guard); unknown variables trace as "anon".
	Classes map[sat.Var]string
	// Strategy, Task and Model identify the run in the opening meta event.
	Strategy string
	Task     string
	Model    string
	// RunID is the stable run identifier
	// (subcategory/benchmark@model/k<bound>/strategy) recorded in the meta
	// event, joining the trace to metric labels, slog lines and /runs.
	RunID string
	// Every samples high-volume events: only every Nth decision, conflict
	// and theory-conflict event is written (0 and 1 both mean "all").
	// Counts stay exact regardless — the summary record always carries
	// full totals.
	Every int
}

// SolverTracer implements sat.Tracer on top of a Sink: it converts the
// solver callbacks into Event records, run-length coalesces propagations,
// applies sampling, and keeps exact per-kind counts for the closing
// summary. It is single-goroutine, like the solver that drives it.
type SolverTracer struct {
	sink  Sink
	opts  TracerOptions
	every uint64
	start time.Time

	seq          uint64
	counts       Counts
	pendingProps uint64
	pendingTheo  uint64
	err          error
}

// NewSolverTracer builds a tracer over sink and writes the opening meta
// event. The tracer owns neither the sink's lifetime nor the solver's: call
// Close when the traced solve finishes, then close the sink.
func NewSolverTracer(sink Sink, opts TracerOptions) *SolverTracer {
	every := uint64(opts.Every)
	if every == 0 {
		every = 1
	}
	t := &SolverTracer{
		sink:  sink,
		opts:  opts,
		every: every,
		start: time.Now(),
	}
	t.counts.ByClass = map[string]uint64{}
	t.counts.BySource = map[string]uint64{}
	t.emit(&Event{
		Kind:     KindMeta,
		Task:     opts.Task,
		Strategy: opts.Strategy,
		Model:    opts.Model,
		Every:    int(every),
		Version:  TraceVersion,
		Run:      opts.RunID,
	})
	return t
}

// Err returns the first sink error, if any.
func (t *SolverTracer) Err() error { return t.err }

func (t *SolverTracer) emit(ev *Event) {
	t.seq++
	ev.Seq = t.seq
	if t.err == nil {
		t.err = t.sink.Emit(ev)
	}
}

// flushBatches writes any pending propagation run-lengths. Called before
// every non-propagation event so that event order within the stream is
// faithful to the search.
func (t *SolverTracer) flushBatches() {
	if t.pendingProps > 0 {
		t.emit(&Event{Kind: KindProp, N: t.pendingProps})
		t.pendingProps = 0
	}
	if t.pendingTheo > 0 {
		t.emit(&Event{Kind: KindTheoryProp, N: t.pendingTheo})
		t.pendingTheo = 0
	}
}

func (t *SolverTracer) class(v sat.Var) string {
	if c, ok := t.opts.Classes[v]; ok {
		return c
	}
	return "anon"
}

// Decision implements sat.Tracer.
func (t *SolverTracer) Decision(l sat.Lit, level int, src sat.DecisionSource) {
	t.counts.Decisions++
	cls := t.class(l.Var())
	t.counts.ByClass[cls]++
	t.counts.BySource[src.String()]++
	if t.counts.Decisions%t.every != 0 {
		return
	}
	t.flushBatches()
	t.emit(&Event{
		Kind:   KindDecision,
		TNS:    time.Since(t.start).Nanoseconds(),
		Idx:    t.counts.Decisions,
		Var:    int32(l.Var()),
		Neg:    l.IsNeg(),
		Class:  cls,
		Level:  level,
		Source: src.String(),
	})
}

// Propagation implements sat.Tracer (run-length coalesced).
func (t *SolverTracer) Propagation(sat.Lit) {
	t.counts.Propagations++
	t.pendingProps++
}

// TheoryPropagation implements sat.Tracer (run-length coalesced).
func (t *SolverTracer) TheoryPropagation(sat.Lit) {
	t.counts.TheoryProps++
	t.pendingTheo++
}

// Conflict implements sat.Tracer.
func (t *SolverTracer) Conflict(info sat.ConflictInfo) {
	t.counts.Conflicts++
	if t.counts.Conflicts%t.every != 0 {
		return
	}
	t.flushBatches()
	t.emit(&Event{
		Kind:     KindConflict,
		TNS:      time.Since(t.start).Nanoseconds(),
		Idx:      t.counts.Conflicts,
		Size:     info.LearntSize,
		LBD:      info.LBD,
		Level:    info.Level,
		Backjump: info.Backjump,
		Theory:   info.Theory,
	})
}

// TheoryConflict implements sat.Tracer.
func (t *SolverTracer) TheoryConflict(size int) {
	t.counts.TheoryConfl++
	if t.counts.TheoryConfl%t.every != 0 {
		return
	}
	t.flushBatches()
	t.emit(&Event{Kind: KindTheoryConflict, Size: size})
}

// Restart implements sat.Tracer.
func (t *SolverTracer) Restart(n uint64) {
	t.counts.Restarts++
	t.flushBatches()
	t.emit(&Event{Kind: KindRestart, N: n})
}

// ReduceDB implements sat.Tracer.
func (t *SolverTracer) ReduceDB(kept, deleted int) {
	t.counts.Reductions++
	t.flushBatches()
	t.emit(&Event{Kind: KindReduce, Kept: kept, Deleted: deleted})
}

// Inprocess implements sat.Tracer.
func (t *SolverTracer) Inprocess(subsumed, strengthened int) {
	t.counts.Inprocessings++
	t.counts.Subsumed += uint64(subsumed)
	t.counts.Strengthened += uint64(strengthened)
	t.flushBatches()
	t.emit(&Event{Kind: KindInprocess, Subsumed: subsumed, Strengthened: strengthened})
}

// Span records a named phase duration (parse, encode, static, solve, or the
// in-solve split) as a flat legacy-style span event (no tree position).
func (t *SolverTracer) Span(name string, d time.Duration) {
	t.flushBatches()
	t.emit(&Event{
		Kind:  KindSpan,
		TNS:   time.Since(t.start).Nanoseconds(),
		Name:  name,
		DurNS: d.Nanoseconds(),
	})
}

// SpanAt records one node of a hierarchical span tree: id is the span's
// per-trace ordinal (≥1), parent the enclosing span's id (0 = root), start
// the offset from the run origin. Version-2 consumers rebuild the tree from
// these; legacy readers see them as ordinary named spans.
func (t *SolverTracer) SpanAt(name string, id, parent int, start, d time.Duration) {
	t.flushBatches()
	t.emit(&Event{
		Kind:    KindSpan,
		TNS:     time.Since(t.start).Nanoseconds(),
		Name:    name,
		DurNS:   d.Nanoseconds(),
		SpanID:  id,
		ParID:   parent,
		StartNS: start.Nanoseconds(),
	})
}

// Close flushes pending batches and writes the summary record: the exact
// event counts and the solver's Stats delta for the traced solve. It does
// not close the sink. Close returns the first error seen on the sink.
func (t *SolverTracer) Close(stats sat.Stats) error {
	t.flushBatches()
	counts := t.counts
	t.emit(&Event{Kind: KindSummary, Counts: &counts, Stats: &stats})
	return t.err
}
