// Package telemetry is the search observability layer: structured DPLL(T)
// trace events, phase timing spans, and an atomic metrics registry.
//
// A SolverTracer implements sat.Tracer and serialises the search as a JSONL
// event stream through a Sink. Every event kind fires exactly as often as
// the matching sat.Stats counter is incremented, so the stream can be
// replayed into end-of-run counters and cross-checked against the solver
// (cmd/tracereport does exactly that). High-volume kinds (Boolean and
// theory propagations) are run-length coalesced into batch events carrying
// a count, which keeps traces compact without losing exactness. A sampling
// mode (TracerOptions.Every = N) additionally records only every Nth
// decision/conflict event while keeping all counts exact in the final
// summary record.
//
// Tracing is zero-cost when disabled: a nil sat.Solver.Tracer costs one
// predictable branch per event site and no allocation.
package telemetry

import "zpre/internal/sat"

// Event kinds, stored in Event.Kind ("k" in the JSONL form).
const (
	// KindMeta opens a trace: task/strategy/model identification and the
	// sampling rate.
	KindMeta = "meta"
	// KindDecision is one solver decision.
	KindDecision = "dec"
	// KindProp is a run-length batch of Boolean unit propagations.
	KindProp = "prop"
	// KindTheoryProp is a run-length batch of theory propagations.
	KindTheoryProp = "tprop"
	// KindConflict is one conflict, after analysis.
	KindConflict = "confl"
	// KindTheoryConflict is one inconsistency reported by the theory.
	KindTheoryConflict = "tconfl"
	// KindRestart is one restart.
	KindRestart = "restart"
	// KindReduce is one learnt-clause database reduction.
	KindReduce = "reduce"
	// KindInprocess is one inprocessing round (subsumption/strengthening).
	KindInprocess = "inproc"
	// KindSpan is a named phase timing (parse/encode/static/solve/...).
	KindSpan = "span"
	// KindSummary closes a trace: exact event counts and the solver's
	// Stats delta for the traced solve.
	KindSummary = "summary"
)

// TraceVersion is the schema version written into the opening meta event.
// Version 0 (the field absent) is the legacy PR-2 schema, whose span events
// are a flat (name, duration) list. Version 2 traces additionally carry a
// run id in the meta record and hierarchical span events (id, parent, start
// offset), from which a span tree can be rebuilt. Readers must accept both:
// old traces in results/ stay readable forever.
const TraceVersion = 2

// Event is one JSONL trace record. Fields are populated per kind; unused
// fields are omitted from the serialised form.
type Event struct {
	Seq  uint64 `json:"seq,omitempty"`
	Kind string `json:"k"`
	// TNS is nanoseconds elapsed since the trace began (decision, conflict
	// and span events only — the clock is not read on batched kinds).
	TNS int64 `json:"t,omitempty"`

	// Meta fields. Version is the trace schema version (0 = legacy PR-2
	// schema, TraceVersion = current); Run is the stable run id
	// (subcategory/benchmark@model/k<bound>/strategy) that joins this trace
	// to metric labels, slog lines and the live /runs surface.
	Task     string `json:"task,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	Model    string `json:"model,omitempty"`
	Every    int    `json:"sample,omitempty"`
	Version  int    `json:"ver,omitempty"`
	Run      string `json:"run,omitempty"`

	// Decision fields. Idx is the 1-based decision ordinal (exact even
	// under sampling), Class the variable class (rf-external, rf-internal,
	// ws, ord, ssa, guard), Source the mechanism that chose the literal
	// (decider, vsids, assumption).
	Idx    uint64 `json:"i,omitempty"`
	Var    int32  `json:"v,omitempty"`
	Neg    bool   `json:"neg,omitempty"`
	Class  string `json:"c,omitempty"`
	Level  int    `json:"lvl,omitempty"`
	Source string `json:"src,omitempty"`

	// Batch count (prop/tprop) or cumulative count (restart).
	N uint64 `json:"n,omitempty"`

	// Conflict fields: learnt clause size and LBD, the level the conflict
	// occurred at (Level above) and the backjump target. Theory marks
	// theory-raised conflicts. Size doubles as the conflict-clause size on
	// tconfl events.
	Size     int   `json:"size,omitempty"`
	LBD      int32 `json:"lbd,omitempty"`
	Backjump int   `json:"bj,omitempty"`
	Theory   bool  `json:"th,omitempty"`

	// Reduce fields.
	Kept    int `json:"kept,omitempty"`
	Deleted int `json:"del,omitempty"`

	// Inprocess fields: clauses subsumed and strengthened in the round.
	Subsumed     int `json:"sub,omitempty"`
	Strengthened int `json:"str,omitempty"`

	// Span fields. Legacy (version 0) span events carry only Name and
	// DurNS. Version 2 span events additionally carry a per-trace span ID,
	// the parent span's ID (0 = root) and the span's start offset from the
	// trace origin, so the reader can rebuild the span tree exactly.
	Name    string `json:"name,omitempty"`
	DurNS   int64  `json:"dur_ns,omitempty"`
	SpanID  int    `json:"sid,omitempty"`
	ParID   int    `json:"par,omitempty"`
	StartNS int64  `json:"start_ns,omitempty"`

	// Summary fields.
	Counts *Counts    `json:"counts,omitempty"`
	Stats  *sat.Stats `json:"stats,omitempty"`
}

// Counts are exact per-kind event totals, maintained by the tracer
// independently of sampling.
type Counts struct {
	Decisions     uint64            `json:"decisions"`
	Propagations  uint64            `json:"propagations"`
	TheoryProps   uint64            `json:"theory_propagations"`
	Conflicts     uint64            `json:"conflicts"`
	TheoryConfl   uint64            `json:"theory_conflicts"`
	Restarts      uint64            `json:"restarts"`
	Reductions    uint64            `json:"reductions"`
	Inprocessings uint64            `json:"inprocessings,omitempty"`
	Subsumed      uint64            `json:"subsumed,omitempty"`
	Strengthened  uint64            `json:"strengthened,omitempty"`
	ByClass       map[string]uint64 `json:"decisions_by_class,omitempty"`
	BySource      map[string]uint64 `json:"decisions_by_source,omitempty"`
}
