package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Sink receives trace events. Implementations are NOT required to be
// goroutine-safe: each solver run writes to its own sink (the parallel
// harness gives every run a private file), which is what keeps concurrent
// traces from interleaving.
type Sink interface {
	Emit(ev *Event) error
	Close() error
}

// JSONLSink serialises events as JSON Lines through a buffered writer.
type JSONLSink struct {
	w   *bufio.Writer
	c   io.Closer
	enc *json.Encoder
	err error
}

// NewJSONLSink wraps w. If w is also an io.Closer, Close closes it after
// flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriterSize(w, 1<<16)
	s := &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// NewFileSink creates (truncates) path and returns a JSONL sink over it.
func NewFileSink(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewJSONLSink(f), nil
}

// Emit writes one event as a JSON line. The first error sticks.
func (s *JSONLSink) Emit(ev *Event) error {
	if s.err != nil {
		return s.err
	}
	s.err = s.enc.Encode(ev)
	return s.err
}

// Close flushes the buffer and closes the underlying writer if closable.
func (s *JSONLSink) Close() error {
	ferr := s.w.Flush()
	if s.err == nil {
		s.err = ferr
	}
	if s.c != nil {
		if cerr := s.c.Close(); s.err == nil {
			s.err = cerr
		}
	}
	return s.err
}

// MemorySink collects events in memory (tests and in-process analysis).
type MemorySink struct {
	Events []Event
}

// Emit appends a copy of the event.
func (s *MemorySink) Emit(ev *Event) error {
	s.Events = append(s.Events, *ev)
	return nil
}

// Close is a no-op.
func (s *MemorySink) Close() error { return nil }

// ReadTrace parses a JSONL event stream back into events.
func ReadTrace(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadTraceFile is ReadTrace over a file path.
func ReadTraceFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
