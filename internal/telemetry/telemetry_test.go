package telemetry

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"zpre/internal/sat"
)

// php loads the n+1-pigeons-into-n-holes family: small, unsat, and
// conflict-heavy enough to exercise learning and restarts.
func php(s *sat.Solver, n int) {
	vars := make([][]sat.Var, n+1)
	for p := 0; p <= n; p++ {
		vars[p] = make([]sat.Var, n)
		for h := 0; h < n; h++ {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]sat.Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = sat.PosLit(vars[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(sat.NegLit(vars[p1][h]), sat.NegLit(vars[p2][h]))
			}
		}
	}
}

// traceSolve runs php(n) with a SolverTracer over a MemorySink and returns
// the recorded events.
func traceSolve(t *testing.T, n, every int) []Event {
	t.Helper()
	s := sat.New()
	sink := &MemorySink{}
	tr := NewSolverTracer(sink, TracerOptions{
		Task:     "php",
		Strategy: "baseline",
		Model:    "sc",
		Every:    every,
	})
	s.Tracer = tr
	php(s, n)
	if got := s.Solve(); got != sat.Unsat {
		t.Fatalf("php(%d) = %v, want Unsat", n, got)
	}
	if err := tr.Close(s.Stats()); err != nil {
		t.Fatalf("close: %v", err)
	}
	return sink.Events
}

// TestTraceCrossCheck runs an unsampled solve and demands the full
// exactness contract: summary counts == solver stats == replayed events.
func TestTraceCrossCheck(t *testing.T) {
	events := traceSolve(t, 6, 1)
	rep, err := AnalyzeTrace(events, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sampled {
		t.Fatal("unsampled trace reported as sampled")
	}
	if err := rep.CrossCheck(); err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Counts.Conflicts == 0 {
		t.Fatal("degenerate trace: no conflicts")
	}
	// An unknown-class decision must trace as "anon", not vanish.
	var classed uint64
	for _, n := range rep.Replayed.ByClass {
		classed += n
	}
	if classed != rep.Replayed.Decisions {
		t.Fatalf("class histogram covers %d of %d decisions", classed, rep.Replayed.Decisions)
	}
}

// TestTraceSampling subsamples heavily and checks the two halves of the
// sampling contract: fewer raw events, identical summary counts.
func TestTraceSampling(t *testing.T) {
	full := traceSolve(t, 6, 1)
	sampled := traceSolve(t, 6, 10)
	if len(sampled) >= len(full) {
		t.Fatalf("sampling did not shrink the trace: %d vs %d events", len(sampled), len(full))
	}
	repF, err := AnalyzeTrace(full, 10)
	if err != nil {
		t.Fatal(err)
	}
	repS, err := AnalyzeTrace(sampled, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !repS.Sampled {
		t.Fatal("sampled trace not flagged as sampled")
	}
	// The search is deterministic, so exact totals must agree.
	cs, cf := repS.Summary.Counts, repF.Summary.Counts
	if cs.Decisions != cf.Decisions || cs.Propagations != cf.Propagations ||
		cs.TheoryProps != cf.TheoryProps || cs.Conflicts != cf.Conflicts ||
		cs.TheoryConfl != cf.TheoryConfl || cs.Restarts != cf.Restarts ||
		cs.Reductions != cf.Reductions {
		t.Fatalf("sampled summary %+v != full summary %+v", cs, cf)
	}
	if err := repS.CrossCheck(); err != nil {
		t.Fatal(err)
	}
	// Replayed decision count reflects the thinning.
	if repS.Replayed.Decisions >= repF.Replayed.Decisions {
		t.Fatalf("sampled replayed decisions %d not fewer than %d",
			repS.Replayed.Decisions, repF.Replayed.Decisions)
	}
}

// TestTraceRoundTrip serialises a real trace through the JSONL sink and
// parses it back; the replay must survive the encode/decode unchanged.
func TestTraceRoundTrip(t *testing.T) {
	events := traceSolve(t, 5, 1)

	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for i := range events {
		if err := sink.Emit(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d -> %d", len(events), len(back))
	}
	rep, err := AnalyzeTrace(back, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CrossCheck(); err != nil {
		t.Fatal(err)
	}
	if rep.Meta == nil || rep.Meta.Task != "php" || rep.Meta.Strategy != "baseline" {
		t.Fatalf("meta lost in round trip: %+v", rep.Meta)
	}
	if out := rep.Format(); len(out) == 0 {
		t.Fatal("empty report")
	}
}

// TestAnalyzeTraceRejectsInterleaving ensures the seq monotonicity check
// catches traces from two runs mixed into one stream.
func TestAnalyzeTraceRejectsInterleaving(t *testing.T) {
	a := traceSolve(t, 4, 1)
	b := traceSolve(t, 4, 1)
	mixed := append(append([]Event{}, a...), b...)
	if _, err := AnalyzeTrace(mixed, 10); err == nil {
		t.Fatal("interleaved trace accepted")
	}
}

// TestMetricsTracerAggregates drives two solver runs into one registry —
// the parallel-harness shape — and checks the aggregated counters.
func TestMetricsTracerAggregates(t *testing.T) {
	reg := NewRegistry()
	var want uint64
	for i := 0; i < 2; i++ {
		s := sat.New()
		mt := NewMetricsTracer(reg)
		s.Tracer = mt
		php(s, 5)
		if got := s.Solve(); got != sat.Unsat {
			t.Fatalf("php(5) = %v", got)
		}
		mt.Flush()
		want += s.Stats().Conflicts
	}
	if got := reg.Counter("solver_conflicts").Value(); got != want {
		t.Fatalf("aggregated conflicts = %d, want %d", got, want)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines; run
// with -race this is the lock-freedom proof for the hot paths.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("shared")
			g := reg.Gauge("level")
			h := reg.Histogram("obs")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(uint64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("level").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	snap := reg.Snapshot()
	if len(snap.Counters) == 0 || len(snap.Histograms) == 0 {
		t.Fatalf("snapshot missing series: %+v", snap)
	}
	if h := snap.Histograms["obs"]; h.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
}

// TestHistogramMergeParallel merges per-worker private histograms into a
// shared one while the shared histogram also takes direct observations.
// Under -race this is the atomicity proof for Histogram.Merge: the merged
// totals must equal the single-histogram result exactly.
func TestHistogramMergeParallel(t *testing.T) {
	const workers, perWorker = 8, 5000
	shared := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := &Histogram{}
			for i := 0; i < perWorker; i++ {
				local.Observe(uint64(w*perWorker + i))
				shared.Observe(1) // concurrent direct traffic
			}
			shared.Merge(local)
		}(w)
	}
	wg.Wait()
	want := uint64(2 * workers * perWorker)
	var control Histogram
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			control.Observe(uint64(w*perWorker + i))
			control.Observe(1)
		}
	}
	got, ctl := shared.snapshot(), control.snapshot()
	if got.Count != want || got.Count != ctl.Count || got.Sum != ctl.Sum {
		t.Fatalf("merged count=%d sum=%d, control count=%d sum=%d (want count %d)",
			got.Count, got.Sum, ctl.Count, ctl.Sum, want)
	}
	for b, n := range ctl.Buckets {
		if got.Buckets[b] != n {
			t.Fatalf("bucket %d = %d, control %d", b, got.Buckets[b], n)
		}
	}
}

// TestRegistryMerge folds worker-private registries into a shared registry
// concurrently (the evaluate -serve aggregation path) and checks counters
// and histogram totals are exact.
func TestRegistryMerge(t *testing.T) {
	shared := NewRegistry()
	const workers, perWorker = 6, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := NewRegistry()
			c := local.Counter("runs")
			h := local.Histogram("latency_us")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(uint64(i))
			}
			local.Gauge("depth").Set(3)
			shared.Merge(local)
		}()
	}
	wg.Wait()
	if got := shared.Counter("runs").Value(); got != workers*perWorker {
		t.Fatalf("merged counter = %d, want %d", got, workers*perWorker)
	}
	snap := shared.Snapshot()
	if h := snap.Histograms["latency_us"]; h.Count != workers*perWorker {
		t.Fatalf("merged histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	if g := snap.Gauges["depth"]; g != 3 {
		t.Fatalf("merged gauge = %d, want 3", g)
	}
}

// TestMetricsTracerLBDHistogram checks the conflict path feeds the shared
// LBD distribution.
func TestMetricsTracerLBDHistogram(t *testing.T) {
	reg := NewRegistry()
	mt := NewMetricsTracer(reg)
	mt.Conflict(sat.ConflictInfo{LBD: 3})
	mt.Conflict(sat.ConflictInfo{LBD: 5})
	mt.Conflict(sat.ConflictInfo{}) // no LBD recorded (e.g. empty learnt)
	snap := reg.Snapshot()
	h := snap.Histograms["solver_lbd"]
	if h.Count != 2 || h.Sum != 8 {
		t.Fatalf("lbd histogram count=%d sum=%d, want 2/8", h.Count, h.Sum)
	}
}

// TestSpanTreeRoundTrip writes version-2 hierarchical span events and
// checks ids, parents and offsets survive serialisation.
func TestSpanTreeRoundTrip(t *testing.T) {
	sink := &MemorySink{}
	tr := NewSolverTracer(sink, TracerOptions{Task: "t", RunID: "lit/x@sc/k1/zpre"})
	tr.SpanAt("run", 1, 0, 0, 10*time.Millisecond)
	tr.SpanAt("encode", 2, 1, time.Millisecond, 2*time.Millisecond)
	if err := tr.Close(sat.Stats{}); err != nil {
		t.Fatal(err)
	}
	if sink.Events[0].Version != TraceVersion || sink.Events[0].Run != "lit/x@sc/k1/zpre" {
		t.Fatalf("meta = %+v, want version %d with run id", sink.Events[0], TraceVersion)
	}
	rep, err := AnalyzeTrace(sink.Events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Spans) != 2 {
		t.Fatalf("spans = %+v", rep.Spans)
	}
	enc := rep.Spans[1]
	if enc.SpanID != 2 || enc.ParID != 1 || enc.StartNS != time.Millisecond.Nanoseconds() {
		t.Fatalf("encode span = %+v", enc)
	}
}

// TestCombine covers the fan-out constructor's nil handling: a nil slot
// must not panic, a single tracer must pass through, and two tracers must
// both see every event.
func TestCombine(t *testing.T) {
	if got := Combine(nil, nil); got != nil {
		t.Fatalf("Combine(nil, nil) = %v, want nil", got)
	}
	sinkA, sinkB := &MemorySink{}, &MemorySink{}
	ta := NewSolverTracer(sinkA, TracerOptions{})
	tb := NewSolverTracer(sinkB, TracerOptions{})
	if got := Combine(ta, nil); got != sat.Tracer(ta) {
		t.Fatalf("Combine(ta, nil) = %v, want ta", got)
	}
	both := Combine(ta, tb)
	both.Restart(1)
	both.ReduceDB(10, 5)
	if err := ta.Close(sat.Stats{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Close(sat.Stats{}); err != nil {
		t.Fatal(err)
	}
	for name, sink := range map[string]*MemorySink{"a": sinkA, "b": sinkB} {
		rep, err := AnalyzeTrace(sink.Events, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Replayed.Restarts != 1 || rep.Replayed.Reductions != 1 {
			t.Fatalf("%s: restarts=%d reductions=%d, want 1/1",
				name, rep.Replayed.Restarts, rep.Replayed.Reductions)
		}
	}
}

// TestSpanEvents checks that span records keep their names and durations
// through analysis.
func TestSpanEvents(t *testing.T) {
	sink := &MemorySink{}
	tr := NewSolverTracer(sink, TracerOptions{})
	tr.Span("encode", 3*time.Millisecond)
	tr.Span("solve", 5*time.Millisecond)
	if err := tr.Close(sat.Stats{}); err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeTrace(sink.Events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Spans) != 2 || rep.Spans[0].Name != "encode" || rep.Spans[1].Name != "solve" {
		t.Fatalf("spans = %+v", rep.Spans)
	}
	if rep.Spans[1].DurNS != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("solve span duration = %d", rep.Spans[1].DurNS)
	}
}

// BenchmarkHistogramObserve measures the enabled histogram hot path: one
// atomic bucket increment plus sum/count updates per observation.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_us")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) & 1023)
	}
}

// BenchmarkRegistryHistogramLookup measures the by-name lookup callers pay
// when they do not cache the *Histogram handle.
func BenchmarkRegistryHistogramLookup(b *testing.B) {
	reg := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Histogram("bench_us").Observe(1)
	}
}
