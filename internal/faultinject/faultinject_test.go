package faultinject

import (
	"testing"
	"time"

	"zpre/internal/sat"
)

func TestParse(t *testing.T) {
	cases := []struct {
		spec string
		want Fault
	}{
		{"panic", Fault{Kind: KindPanic}},
		{"panic:fib", Fault{Kind: KindPanic, Match: "fib"}},
		{"panic:fib:3", Fault{Kind: KindPanic, Match: "fib", After: 3}},
		{"stall::5:100ms", Fault{Kind: KindStall, After: 5, Sleep: 100 * time.Millisecond}},
		{"stall:x", Fault{Kind: KindStall, Match: "x", Sleep: 2 * time.Second}},
		{"corrupt::2", Fault{Kind: KindCorrupt, After: 2}},
	}
	for _, c := range cases {
		got, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
	for _, bad := range []string{"explode", "panic:x:notanumber", "panic:x:1:5s", "stall:x:1:zzz"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestTracerPanicAtNthDecision(t *testing.T) {
	set := New(Fault{Kind: KindPanic, Match: "target", After: 3})
	tr := set.Tracer("task/target", nil)
	if tr == nil {
		t.Fatal("matching fault returned nil tracer")
	}
	if got := set.Tracer("task/other", nil); got != nil {
		t.Fatalf("non-matching label got a wrapper: %v", got)
	}
	fire := func() (p *Panic) {
		defer func() {
			if r := recover(); r != nil {
				p = r.(*Panic)
			}
		}()
		for i := 0; i < 10; i++ {
			tr.Decision(sat.LitUndef, i, sat.SourceVSIDS)
		}
		return nil
	}
	p := fire()
	if p == nil {
		t.Fatal("fault never fired")
	}
	if p.Label != "task/target" || p.Fault.Kind != KindPanic {
		t.Fatalf("panic payload = %+v", p)
	}
	if set.Fired(0) != 1 {
		t.Fatalf("fired count = %d", set.Fired(0))
	}
	if set.TotalFired() != 1 {
		t.Fatalf("total fired = %d", set.TotalFired())
	}
}

func TestTracerStall(t *testing.T) {
	set := New(Fault{Kind: KindStall, After: 1, Sleep: 50 * time.Millisecond})
	tr := set.Tracer("any", nil)
	start := time.Now()
	tr.Decision(sat.LitUndef, 0, sat.SourceVSIDS)
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("stall slept only %v", d)
	}
	tr.Decision(sat.LitUndef, 1, sat.SourceVSIDS)
	if set.Fired(0) != 1 {
		t.Fatalf("stall fired %d times, want 1", set.Fired(0))
	}
}

type fakeTheory struct {
	conflict []sat.Lit
}

func (f *fakeTheory) Relevant(sat.Var) bool              { return true }
func (f *fakeTheory) Assert(sat.Lit) []sat.Lit           { return f.conflict }
func (f *fakeTheory) AssertedCount() int                 { return 0 }
func (f *fakeTheory) PopToCount(int)                     {}
func (f *fakeTheory) Propagate() []sat.TheoryImplication { return nil }
func (f *fakeTheory) FinalCheck() []sat.Lit              { return f.conflict }

func TestTheoryCorruption(t *testing.T) {
	set := New(Fault{Kind: KindCorrupt, After: 2})
	base := &fakeTheory{conflict: []sat.Lit{sat.MkLit(1, false)}}
	th := set.Theory("run", base)
	if th == sat.Theory(base) {
		t.Fatal("matching corrupt fault did not wrap the theory")
	}
	// First conflict passes through, second and later are suppressed.
	if got := th.Assert(sat.MkLit(2, false)); got == nil {
		t.Fatal("first conflict was suppressed")
	}
	if got := th.Assert(sat.MkLit(2, false)); got != nil {
		t.Fatalf("second conflict not suppressed: %v", got)
	}
	if got := th.FinalCheck(); got != nil {
		t.Fatalf("final-check conflict not suppressed: %v", got)
	}
	if set.Fired(0) != 2 {
		t.Fatalf("fired = %d, want 2", set.Fired(0))
	}
	// Consistent verdicts are never touched.
	base.conflict = nil
	if got := th.Assert(sat.MkLit(3, false)); got != nil {
		t.Fatalf("nil verdict corrupted: %v", got)
	}
}

func TestNilSet(t *testing.T) {
	var set *Set
	if set.Len() != 0 || set.TotalFired() != 0 {
		t.Fatal("nil set has faults")
	}
	if got := set.Tracer("x", nil); got != nil {
		t.Fatalf("nil set wrapped tracer: %v", got)
	}
	base := &fakeTheory{}
	if got := set.Theory("x", base); got != sat.Theory(base) {
		t.Fatal("nil set wrapped theory")
	}
}

func TestParseServerSeams(t *testing.T) {
	cases := []struct {
		spec string
		want Fault
	}{
		{"enqueue:job-3:2", Fault{Kind: KindEnqueue, Match: "job-3", After: 2}},
		{"cache-get::1", Fault{Kind: KindCacheGet, After: 1}},
		{"cache-put:fig2", Fault{Kind: KindCachePut, Match: "fig2"}},
		{"cancel:peterson:1:80ms", Fault{Kind: KindCancel, Match: "peterson", After: 1, Sleep: 80 * time.Millisecond}},
	}
	for _, c := range cases {
		f, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if f != c.want {
			t.Fatalf("Parse(%q) = %+v, want %+v", c.spec, f, c.want)
		}
		// Round trip through String (defaulted After renders as 1).
		rt, err := Parse(f.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)): %v", c.spec, err)
		}
		if rt.Kind != f.Kind || rt.Match != f.Match || rt.Sleep != f.Sleep {
			t.Fatalf("round trip of %q: %+v vs %+v", c.spec, rt, f)
		}
	}
	if _, err := Parse("enqueue:x:1:5s"); err == nil {
		t.Fatal("sleep on an enqueue fault must be rejected")
	}
}

func TestFireAtNthEvent(t *testing.T) {
	set := New(
		Fault{Kind: KindEnqueue, Match: "jobA", After: 2},
		Fault{Kind: KindCacheGet}, // fires at the very first matching get
	)
	// Enqueue seam: only the 2nd matching event fires, and only once.
	if _, ok := set.Fire(KindEnqueue, "jobA/try0"); ok {
		t.Fatal("fired at event 1, want event 2")
	}
	if f, ok := set.Fire(KindEnqueue, "jobA/try1"); !ok || f.Kind != KindEnqueue {
		t.Fatalf("event 2 did not fire (fault %+v, ok %v)", f, ok)
	}
	if _, ok := set.Fire(KindEnqueue, "jobA/try2"); ok {
		t.Fatal("fired again after the triggering event")
	}
	// Non-matching labels never advance the counter.
	if _, ok := set.Fire(KindEnqueue, "jobB"); ok {
		t.Fatal("non-matching label fired")
	}
	// Distinct kinds keep distinct counters.
	if f, ok := set.Fire(KindCacheGet, "anything"); !ok || f.Kind != KindCacheGet {
		t.Fatal("cache-get fault did not fire at its first event")
	}
	if got := set.TotalFired(); got != 2 {
		t.Fatalf("TotalFired = %d, want 2", got)
	}
	// Nil sets never fire.
	var nilSet *Set
	if _, ok := nilSet.Fire(KindEnqueue, "x"); ok {
		t.Fatal("nil set fired")
	}
}
