// Package faultinject deterministically injects failures into the DPLL(T)
// search so the evaluation harness can prove — in ordinary tests, with no
// build tags — that every failure mode is contained, classified and counted.
//
// Faults attach at the two seams the solver already exposes:
//
//   - the sat.Tracer seam: a wrapping tracer counts Decision events and, at
//     the Nth one, panics (KindPanic) or sleeps (KindStall). Because the
//     tracer runs inside the search loop, a panic here is indistinguishable
//     from an invariant violation in the solver itself, and a stall is
//     indistinguishable from a pathological instance.
//   - the theory seam: a wrapping sat.Theory suppresses conflict verdicts
//     from Assert/FinalCheck (KindCorrupt), modelling an unsound theory
//     solver. The harness's verdict checking must flag the resulting wrong
//     answer as an error rather than trusting it.
//
// A Set is safe for concurrent use by parallel harness workers: each run gets
// its own wrapper (per-run event counters) while fire counts aggregate
// atomically on the shared faults.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"zpre/internal/sat"
)

// Kind is the failure mode a Fault injects.
type Kind uint8

// Fault kinds.
const (
	// KindPanic panics out of the search loop at the Nth decision.
	KindPanic Kind = iota
	// KindStall sleeps inside the search loop at the Nth decision.
	KindStall
	// KindCorrupt suppresses theory conflict verdicts from the Nth one on,
	// making the theory unsound.
	KindCorrupt

	// Server seams (zpred / internal/server). These fire through Set.Fire at
	// explicit injection points rather than through the solver wrappers; each
	// proves the service degrades instead of dying.

	// KindEnqueue fails the Nth matching queue submission, as an overloaded
	// or broken queue would; the server must answer 503, not crash.
	KindEnqueue
	// KindCacheGet corrupts the Nth matching verdict-cache read; checksum
	// validation must turn it into a miss, never a wrong answer.
	KindCacheGet
	// KindCachePut fails the Nth matching verdict-cache write; the job must
	// still complete, only un-memoized.
	KindCachePut
	// KindCancel delays the loser-cancellation broadcast of the Nth matching
	// portfolio race by Sleep; the reaper must still collect every goroutine.
	KindCancel
)

// String renders the kind (the same spelling Parse accepts).
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindStall:
		return "stall"
	case KindCorrupt:
		return "corrupt"
	case KindEnqueue:
		return "enqueue"
	case KindCacheGet:
		return "cache-get"
	case KindCachePut:
		return "cache-put"
	case KindCancel:
		return "cancel"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Fault describes one injected failure.
type Fault struct {
	// Kind is the failure mode.
	Kind Kind
	// Match selects runs by substring of the run label (task/strategy). The
	// empty string matches every run.
	Match string
	// After is the 1-based index of the triggering event within a run: the
	// Nth decision for panic/stall, the Nth theory conflict for corrupt.
	// Zero means the first.
	After uint64
	// Sleep is the stall duration (KindStall only).
	Sleep time.Duration
}

// String renders the fault in the spec syntax Parse accepts.
func (f Fault) String() string {
	s := fmt.Sprintf("%s:%s:%d", f.Kind, f.Match, f.at())
	if f.Kind == KindStall || f.Kind == KindCancel {
		s += ":" + f.Sleep.String()
	}
	return s
}

func (f Fault) at() uint64 {
	if f.After == 0 {
		return 1
	}
	return f.After
}

// Parse reads a fault spec of the form
//
//	kind:match[:after[:sleep]]
//
// where kind is panic|stall|corrupt|enqueue|cache-get|cache-put|cancel,
// match is a run-label substring (empty = all runs), after is the 1-based
// triggering event index (default 1) and sleep is a Go duration (stall and
// cancel only; defaults 2s and 50ms).
func Parse(spec string) (Fault, error) {
	parts := strings.SplitN(spec, ":", 4)
	var f Fault
	switch parts[0] {
	case "panic":
		f.Kind = KindPanic
	case "stall":
		f.Kind = KindStall
		f.Sleep = 2 * time.Second
	case "corrupt":
		f.Kind = KindCorrupt
	case "enqueue":
		f.Kind = KindEnqueue
	case "cache-get":
		f.Kind = KindCacheGet
	case "cache-put":
		f.Kind = KindCachePut
	case "cancel":
		f.Kind = KindCancel
		f.Sleep = 50 * time.Millisecond
	default:
		return Fault{}, fmt.Errorf("faultinject: unknown kind %q in %q (want panic|stall|corrupt|enqueue|cache-get|cache-put|cancel)", parts[0], spec)
	}
	if len(parts) > 1 {
		f.Match = parts[1]
	}
	if len(parts) > 2 && parts[2] != "" {
		n, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return Fault{}, fmt.Errorf("faultinject: bad event index %q in %q: %v", parts[2], spec, err)
		}
		f.After = n
	}
	if len(parts) > 3 && parts[3] != "" {
		if f.Kind != KindStall && f.Kind != KindCancel {
			return Fault{}, fmt.Errorf("faultinject: sleep only applies to stall and cancel faults: %q", spec)
		}
		d, err := time.ParseDuration(parts[3])
		if err != nil {
			return Fault{}, fmt.Errorf("faultinject: bad sleep %q in %q: %v", parts[3], spec, err)
		}
		f.Sleep = d
	}
	return f, nil
}

// Panic is the value an injected KindPanic panics with, so tests (and the
// harness classifier) can tell an injected panic from a genuine one.
type Panic struct {
	// Label is the run label the fault fired in.
	Label string
	// Fault is the fault that fired.
	Fault Fault
}

// String renders the injected panic value.
func (p *Panic) String() string {
	return fmt.Sprintf("injected fault %s in run %q", p.Fault, p.Label)
}

type armedFault struct {
	Fault
	fired atomic.Uint64
	// seen counts server-seam events (Set.Fire) across the whole process
	// lifetime; solver-seam faults count per run inside their wrappers
	// instead.
	seen atomic.Uint64
}

// Set holds armed faults shared across the runs of a sweep.
type Set struct {
	faults []*armedFault
}

// New arms the given faults.
func New(faults ...Fault) *Set {
	s := &Set{}
	for _, f := range faults {
		s.faults = append(s.faults, &armedFault{Fault: f})
	}
	return s
}

// Len reports the number of armed faults (0 for a nil Set).
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.faults)
}

// Fired reports how many times fault i has fired.
func (s *Set) Fired(i int) uint64 { return s.faults[i].fired.Load() }

// TotalFired reports how many times any fault has fired (0 for a nil Set).
func (s *Set) TotalFired() uint64 {
	if s == nil {
		return 0
	}
	var n uint64
	for _, f := range s.faults {
		n += f.fired.Load()
	}
	return n
}

func (s *Set) matching(label string, kinds ...Kind) []*armedFault {
	if s == nil {
		return nil
	}
	var out []*armedFault
	for _, f := range s.faults {
		if f.Match != "" && !strings.Contains(label, f.Match) {
			continue
		}
		for _, k := range kinds {
			if f.Kind == k {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// Fire counts one occurrence of a server-seam event (queue enqueue, cache
// get/put, portfolio cancel) for the faults of the given kind matching
// label, and reports whether one fires at exactly this occurrence: the
// triggering fault and true at the Nth matching event, a zero Fault and
// false otherwise. Unlike the solver wrappers (whose event counters are per
// run), seam counters span the process, so "the 3rd enqueue overall" is
// expressible. Safe for concurrent use; a nil Set never fires.
func (s *Set) Fire(kind Kind, label string) (Fault, bool) {
	for _, f := range s.matching(label, kind) {
		if f.seen.Add(1) == f.at() {
			f.fired.Add(1)
			return f.Fault, true
		}
	}
	return Fault{}, false
}

// Tracer wraps base with the panic/stall faults matching label. It returns
// base unchanged (possibly nil) when no fault matches, so un-faulted runs pay
// nothing.
func (s *Set) Tracer(label string, base sat.Tracer) sat.Tracer {
	faults := s.matching(label, KindPanic, KindStall)
	if len(faults) == 0 {
		return base
	}
	return &tracer{base: base, label: label, faults: faults}
}

// tracer counts Decision events for one run and fires matching faults at
// their triggering index. All other callbacks delegate.
type tracer struct {
	base      sat.Tracer
	label     string
	faults    []*armedFault
	decisions uint64
}

func (t *tracer) Decision(l sat.Lit, level int, src sat.DecisionSource) {
	t.decisions++
	for _, f := range t.faults {
		if t.decisions != f.at() {
			continue
		}
		f.fired.Add(1)
		switch f.Kind {
		case KindPanic:
			panic(&Panic{Label: t.label, Fault: f.Fault})
		case KindStall:
			time.Sleep(f.Sleep)
		}
	}
	if t.base != nil {
		t.base.Decision(l, level, src)
	}
}

func (t *tracer) Propagation(l sat.Lit) {
	if t.base != nil {
		t.base.Propagation(l)
	}
}

func (t *tracer) TheoryPropagation(l sat.Lit) {
	if t.base != nil {
		t.base.TheoryPropagation(l)
	}
}

func (t *tracer) Conflict(info sat.ConflictInfo) {
	if t.base != nil {
		t.base.Conflict(info)
	}
}

func (t *tracer) TheoryConflict(size int) {
	if t.base != nil {
		t.base.TheoryConflict(size)
	}
}

func (t *tracer) Restart(n uint64) {
	if t.base != nil {
		t.base.Restart(n)
	}
}

func (t *tracer) ReduceDB(kept, deleted int) {
	if t.base != nil {
		t.base.ReduceDB(kept, deleted)
	}
}

func (t *tracer) Inprocess(subsumed, strengthened int) {
	if t.base != nil {
		t.base.Inprocess(subsumed, strengthened)
	}
}

// Theory wraps base with the corrupt faults matching label. It returns base
// unchanged when no fault matches.
func (s *Set) Theory(label string, base sat.Theory) sat.Theory {
	faults := s.matching(label, KindCorrupt)
	if len(faults) == 0 {
		return base
	}
	return &theory{base: base, faults: faults}
}

// theory suppresses conflict verdicts from the wrapped theory once the
// triggering conflict index is reached, making it unsound for the rest of
// the run.
type theory struct {
	base      sat.Theory
	faults    []*armedFault
	conflicts uint64
}

func (t *theory) suppress(conflict []sat.Lit) []sat.Lit {
	if conflict == nil {
		return nil
	}
	t.conflicts++
	for _, f := range t.faults {
		if t.conflicts >= f.at() {
			f.fired.Add(1)
			return nil
		}
	}
	return conflict
}

func (t *theory) Relevant(v sat.Var) bool { return t.base.Relevant(v) }

func (t *theory) Assert(l sat.Lit) []sat.Lit { return t.suppress(t.base.Assert(l)) }

func (t *theory) AssertedCount() int { return t.base.AssertedCount() }

func (t *theory) PopToCount(n int) { t.base.PopToCount(n) }

func (t *theory) Propagate() []sat.TheoryImplication { return t.base.Propagate() }

func (t *theory) FinalCheck() []sat.Lit { return t.suppress(t.base.FinalCheck()) }
