// Package dataflow implements a per-thread abstract interpretation over
// cprog programs: a constant/copy-propagation simplifier (Simplify) and an
// interval analysis with sound cross-thread widening (Analyze). Both reuse
// the exact width-masked wrap-around semantics of internal/interp, so every
// fold and every interval is faithful to the encoder's bit-vector circuits.
//
// The encoder consumes the results as a value-infeasibility oracle: a read
// whose feasible interval is disjoint from a candidate write's value
// interval can never observe that write, so the rf edge is dropped before
// the SAT search ever sees it.
package dataflow

import (
	"fmt"

	"zpre/internal/cprog"
)

// Interval is a signed width-bit interval [Lo, Hi] (both inclusive), with
// Lo and Hi interpreted as sign-extended width-bit values. Lo > Hi denotes
// the empty interval (no value is feasible). The zero value is the
// singleton {0}, matching the encoder's default for uninitialised locals.
type Interval struct {
	Lo, Hi int64
}

// MinSigned and MaxSigned bound the signed width-bit value range.
func MinSigned(width int) int64 { return -(int64(1) << uint(width-1)) }
func MaxSigned(width int) int64 { return int64(1)<<uint(width-1) - 1 }

// Top is the full signed range for the width: no information.
func Top(width int) Interval { return Interval{Lo: MinSigned(width), Hi: MaxSigned(width)} }

// Empty is the canonical empty interval.
func Empty() Interval { return Interval{Lo: 1, Hi: 0} }

// ToSigned sign-extends a masked width-bit value, mirroring interp.
func ToSigned(v uint64, width int) int64 {
	v &= Mask(width)
	sign := uint64(1) << uint(width-1)
	if v&sign != 0 {
		return int64(v) - int64(1)<<uint(width)
	}
	return int64(v)
}

// Mask is the width-bit value mask.
func Mask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(width) - 1
}

// Single is the singleton interval holding the signed interpretation of a
// masked width-bit value.
func Single(v uint64, width int) Interval {
	s := ToSigned(v, width)
	return Interval{Lo: s, Hi: s}
}

// FromConst is the singleton for a cprog constant, masked to width bits.
func FromConst(v int64, width int) Interval {
	return Single(uint64(v), width)
}

func (i Interval) IsEmpty() bool { return i.Lo > i.Hi }

func (i Interval) IsTop(width int) bool {
	return i.Lo <= MinSigned(width) && i.Hi >= MaxSigned(width)
}

// Const reports whether the interval is a singleton and returns its masked
// width-bit representation.
func (i Interval) Const(width int) (uint64, bool) {
	if i.Lo != i.Hi {
		return 0, false
	}
	return uint64(i.Lo) & Mask(width), true
}

func (i Interval) Contains(v int64) bool { return i.Lo <= v && v <= i.Hi }

// Disjoint reports that no value lies in both intervals. An empty interval
// is disjoint from everything.
func (i Interval) Disjoint(o Interval) bool {
	return i.IsEmpty() || o.IsEmpty() || i.Hi < o.Lo || o.Hi < i.Lo
}

// Join is the interval union (convex hull).
func Join(a, b Interval) Interval {
	if a.IsEmpty() {
		return b
	}
	if b.IsEmpty() {
		return a
	}
	return Interval{Lo: min64(a.Lo, b.Lo), Hi: max64(a.Hi, b.Hi)}
}

// Meet is the interval intersection.
func Meet(a, b Interval) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Empty()
	}
	r := Interval{Lo: max64(a.Lo, b.Lo), Hi: min64(a.Hi, b.Hi)}
	if r.IsEmpty() {
		return Empty()
	}
	return r
}

// Widen jumps an endpoint that grew since old straight to the width bound,
// guaranteeing fixpoint termination in a constant number of steps.
func Widen(old, grown Interval, width int) Interval {
	if old.IsEmpty() {
		return grown
	}
	if grown.IsEmpty() {
		return old
	}
	w := grown
	if grown.Lo < old.Lo {
		w.Lo = MinSigned(width)
	}
	if grown.Hi > old.Hi {
		w.Hi = MaxSigned(width)
	}
	return w
}

func (i Interval) String() string {
	if i.IsEmpty() {
		return "[]"
	}
	if i.Lo == i.Hi {
		return fmt.Sprintf("[%d]", i.Lo)
	}
	return fmt.Sprintf("[%d,%d]", i.Lo, i.Hi)
}

// FoldUn evaluates a unary operator on a masked width-bit value with
// interp's exact semantics. ok is false for unrecognised operators.
func FoldUn(op cprog.Op, v uint64, width int) (uint64, bool) {
	m := Mask(width)
	v &= m
	switch op {
	case cprog.OpNeg:
		return (-v) & m, true
	case cprog.OpBitNot:
		return (^v) & m, true
	case cprog.OpLNot:
		return b2u(v == 0), true
	}
	return 0, false
}

// FoldBin evaluates a binary operator on masked width-bit values with
// interp's exact semantics. ok is false for unrecognised operators.
func FoldBin(op cprog.Op, l, r uint64, width int) (uint64, bool) {
	m := Mask(width)
	l &= m
	r &= m
	switch op {
	case cprog.OpAdd:
		return (l + r) & m, true
	case cprog.OpSub:
		return (l - r) & m, true
	case cprog.OpMul:
		return (l * r) & m, true
	case cprog.OpBitAnd:
		return l & r, true
	case cprog.OpBitOr:
		return l | r, true
	case cprog.OpBitXor:
		return l ^ r, true
	case cprog.OpShl:
		if r >= uint64(width) {
			return 0, true
		}
		return (l << r) & m, true
	case cprog.OpShr:
		if r >= uint64(width) {
			return 0, true
		}
		return l >> r, true
	case cprog.OpEq:
		return b2u(l == r), true
	case cprog.OpNe:
		return b2u(l != r), true
	case cprog.OpLt:
		return b2u(ToSigned(l, width) < ToSigned(r, width)), true
	case cprog.OpLe:
		return b2u(ToSigned(l, width) <= ToSigned(r, width)), true
	case cprog.OpGt:
		return b2u(ToSigned(l, width) > ToSigned(r, width)), true
	case cprog.OpGe:
		return b2u(ToSigned(l, width) >= ToSigned(r, width)), true
	case cprog.OpLAnd:
		return b2u(l != 0 && r != 0), true
	case cprog.OpLOr:
		return b2u(l != 0 || r != 0), true
	}
	return 0, false
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// precisionWidth caps the widths for which non-singleton interval
// arithmetic is attempted: beyond it the int64 endpoint arithmetic below
// could itself overflow, so everything degrades soundly to Top.
const precisionWidth = 31

// UnInterval over-approximates a unary operator on signed width-bit
// intervals. Every result is sound wrt FoldUn: for any concrete v in a,
// FoldUn(op, v) (signed) lies in the result.
func UnInterval(op cprog.Op, a Interval, width int) Interval {
	if a.IsEmpty() {
		return Empty()
	}
	if c, ok := a.Const(width); ok {
		if v, ok := FoldUn(op, c, width); ok {
			return Single(v, width)
		}
		return Top(width)
	}
	if width > precisionWidth {
		return Top(width)
	}
	switch op {
	case cprog.OpNeg:
		// -x wraps only at MinSigned; the fit check catches that case.
		return fit(Interval{Lo: -a.Hi, Hi: -a.Lo}, width)
	case cprog.OpBitNot:
		// ^x == -x-1 and never leaves the signed range.
		return Interval{Lo: -a.Hi - 1, Hi: -a.Lo - 1}
	case cprog.OpLNot:
		if !a.Contains(0) {
			return Interval{Lo: 0, Hi: 0}
		}
		return Interval{Lo: 0, Hi: 1}
	}
	return Top(width)
}

// BinInterval over-approximates a binary operator on signed width-bit
// intervals, sound wrt FoldBin in the same sense as UnInterval.
func BinInterval(op cprog.Op, a, b Interval, width int) Interval {
	if a.IsEmpty() || b.IsEmpty() {
		return Empty()
	}
	if ca, ok := a.Const(width); ok {
		if cb, ok := b.Const(width); ok {
			if v, ok := FoldBin(op, ca, cb, width); ok {
				return Single(v, width)
			}
			return Top(width)
		}
	}
	if width > precisionWidth {
		return Top(width)
	}
	switch op {
	case cprog.OpAdd:
		return fit(Interval{Lo: a.Lo + b.Lo, Hi: a.Hi + b.Hi}, width)
	case cprog.OpSub:
		return fit(Interval{Lo: a.Lo - b.Hi, Hi: a.Hi - b.Lo}, width)
	case cprog.OpMul:
		lo, hi := a.Lo*b.Lo, a.Lo*b.Lo
		for _, v := range []int64{a.Lo * b.Hi, a.Hi * b.Lo, a.Hi * b.Hi} {
			lo, hi = min64(lo, v), max64(hi, v)
		}
		return fit(Interval{Lo: lo, Hi: hi}, width)
	case cprog.OpEq:
		return cmpInterval(a, b, func(l, r int64) bool { return l == r })
	case cprog.OpNe:
		return cmpInterval(a, b, func(l, r int64) bool { return l != r })
	case cprog.OpLt:
		return cmpOrd(a, b, a.Hi < b.Lo, a.Lo >= b.Hi)
	case cprog.OpLe:
		return cmpOrd(a, b, a.Hi <= b.Lo, a.Lo > b.Hi)
	case cprog.OpGt:
		return cmpOrd(a, b, a.Lo > b.Hi, a.Hi <= b.Lo)
	case cprog.OpGe:
		return cmpOrd(a, b, a.Lo >= b.Hi, a.Hi < b.Lo)
	case cprog.OpLAnd:
		if !a.Contains(0) && !b.Contains(0) {
			return Interval{Lo: 1, Hi: 1}
		}
		if isZero(a) || isZero(b) {
			return Interval{Lo: 0, Hi: 0}
		}
		return Interval{Lo: 0, Hi: 1}
	case cprog.OpLOr:
		if !a.Contains(0) || !b.Contains(0) {
			return Interval{Lo: 1, Hi: 1}
		}
		if isZero(a) && isZero(b) {
			return Interval{Lo: 0, Hi: 0}
		}
		return Interval{Lo: 0, Hi: 1}
	case cprog.OpShr:
		// Logical shift of a non-negative value by a known non-negative
		// amount shrinks it towards zero.
		if a.Lo >= 0 && b.Lo >= 0 {
			if b.Lo >= int64(width) {
				return Interval{Lo: 0, Hi: 0}
			}
			return Interval{Lo: 0, Hi: a.Hi >> uint(b.Lo)}
		}
	}
	return Top(width)
}

// cmpInterval resolves an equality-class comparison to a 0/1 interval,
// using eq over singletons and overlap otherwise.
func cmpInterval(a, b Interval, eq func(l, r int64) bool) Interval {
	if a.Lo == a.Hi && b.Lo == b.Hi {
		if eq(a.Lo, b.Lo) {
			return Interval{Lo: 1, Hi: 1}
		}
		return Interval{Lo: 0, Hi: 0}
	}
	if a.Disjoint(b) {
		// Equality can never hold across disjoint ranges.
		if eq(0, 0) { // eq is ==
			return Interval{Lo: 0, Hi: 0}
		}
		return Interval{Lo: 1, Hi: 1} // eq is !=
	}
	return Interval{Lo: 0, Hi: 1}
}

// cmpOrd resolves an ordering comparison: alwaysTrue / alwaysFalse are the
// definite cases over the two intervals.
func cmpOrd(a, b Interval, alwaysTrue, alwaysFalse bool) Interval {
	switch {
	case alwaysTrue:
		return Interval{Lo: 1, Hi: 1}
	case alwaysFalse:
		return Interval{Lo: 0, Hi: 0}
	}
	return Interval{Lo: 0, Hi: 1}
}

func isZero(i Interval) bool { return i.Lo == 0 && i.Hi == 0 }

// fit keeps an exactly-computed result interval if it lies inside the
// signed width-bit range; wrap-around would otherwise split it, so the
// result degrades to Top.
func fit(i Interval, width int) Interval {
	if i.Lo >= MinSigned(width) && i.Hi <= MaxSigned(width) {
		return i
	}
	return Top(width)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
