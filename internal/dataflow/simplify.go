package dataflow

import (
	"zpre/internal/cprog"
)

// SimplifyStats counts the rewrites Simplify performed. FoldedAssigns is
// the headline number threaded through the harness tables.
type SimplifyStats struct {
	FoldedAssigns int // assignments/initialisers whose RHS folded to a literal
	FoldedGuards  int // if/while/assume/assert conditions folded to a literal
	DeadWrites    int // stores to shared variables no thread ever reads
	DroppedStmts  int // statements removed outright (dead branches, true assumes)
}

// Simplify returns a semantically equivalent program with constants
// folded, copies propagated, constant branches inlined, trivially-true
// assumes/asserts dropped, and dead shared writes removed. The rewrite is
// verdict-preserving for the partial-order encoding:
//
//   - Folding uses FoldBin/FoldUn, the exact width-masked semantics the
//     encoder's bit-vector circuits implement, so every folded expression
//     denotes the same value in every execution.
//   - A branch is inlined only when its condition folds to a literal, in
//     which case the encoder would have emitted the same events under a
//     guard that is constantly true (or an empty event set).
//   - Constant-false assumes and asserts are kept: they change
//     satisfiability and must reach the encoder.
//   - Dead-write elimination removes a store only if the variable is never
//     referenced by any thread or the postcondition, is never a mutex, and
//     the store's RHS reads no shared variable (so no read event is lost).
//     Such a write can only serialise against other writes to the same
//     dead variable; dropping all of them removes an isolated, always
//     satisfiable ws sub-problem.
//   - Atomic bodies are never rewritten: shrinking an atomic section would
//     weaken its mutual-exclusion window.
//
// The input program is not mutated.
func Simplify(p *cprog.Program, width int) (*cprog.Program, SimplifyStats) {
	s := &simplifier{width: width, shared: map[string]bool{}}
	for _, sh := range p.Shared {
		s.shared[sh.Name] = true
	}
	s.collectUses(p)

	out := &cprog.Program{Name: p.Name, Shared: append([]cprog.SharedDecl(nil), p.Shared...)}
	for _, th := range p.Threads {
		s.scope = map[string]bool{}
		out.Threads = append(out.Threads, &cprog.Thread{
			Name: th.Name,
			Body: s.stmts(th.Body, env{}),
		})
	}
	s.scope = map[string]bool{}
	out.Post = s.stmts(p.Post, env{})
	return out, s.stats
}

// val is the copy/constant lattice for one local: a known literal, an
// alias of another (root) local, or unknown.
type val struct {
	isConst bool
	c       uint64 // masked width-bit literal
	alias   string // non-empty: this local currently equals that local
}

type env map[string]val

func (e env) clone() env {
	c := make(env, len(e))
	for k, v := range e { //mapiter:ok map-to-map copy
		c[k] = v
	}
	return c
}

// merge keeps only facts that agree on both branches; everything else
// becomes unknown. Locals assigned on only one side also become unknown —
// the encoder zero-fills missing branch locals, so agreeing with the other
// side cannot be assumed.
func (e env) merge(o env) env {
	m := env{}
	for k, v := range e { //mapiter:ok intersection into a map
		if ov, ok := o[k]; ok && v == ov {
			m[k] = v
		}
	}
	return m
}

// kill drops every alias fact pointing at the reassigned local.
func (e env) kill(name string) {
	delete(e, name)
	for k, v := range e { //mapiter:ok order-independent deletion
		if v.alias == name {
			delete(e, k)
		}
	}
}

type simplifier struct {
	width  int
	shared map[string]bool
	// used marks shared variables that some thread reads (any Ref in any
	// expression) or locks; writes to unmarked shared variables are dead.
	used map[string]bool
	// scope tracks locals declared so far in the current thread, so a
	// dropped branch's declarations can be preserved when still needed.
	scope map[string]bool
	stats SimplifyStats
}

// collectUses scans the whole program for shared-variable reads and mutex
// operations. Havoc and Assign targets are writes, not uses.
func (s *simplifier) collectUses(p *cprog.Program) {
	s.used = map[string]bool{}
	var expr func(x cprog.Expr)
	expr = func(x cprog.Expr) {
		switch ex := x.(type) {
		case cprog.Ref:
			if s.shared[ex.Name] {
				s.used[ex.Name] = true
			}
		case cprog.UnOp:
			expr(ex.X)
		case cprog.BinOp:
			expr(ex.L)
			expr(ex.R)
		}
	}
	var walk func(stmts []cprog.Stmt)
	walk = func(stmts []cprog.Stmt) {
		for _, st := range stmts {
			switch t := st.(type) {
			case cprog.Local:
				if t.Init != nil {
					expr(t.Init)
				}
			case cprog.Assign:
				expr(t.Rhs)
			case cprog.Assume:
				expr(t.Cond)
			case cprog.Assert:
				expr(t.Cond)
			case cprog.If:
				expr(t.Cond)
				walk(t.Then)
				walk(t.Else)
			case cprog.While:
				expr(t.Cond)
				walk(t.Body)
			case cprog.Lock:
				s.used[t.Mutex] = true
			case cprog.Unlock:
				s.used[t.Mutex] = true
			case cprog.Atomic:
				walk(t.Body)
			}
		}
	}
	for _, th := range p.Threads {
		walk(th.Body)
	}
	walk(p.Post)
}

// resolve follows alias chains to a root name with no further alias fact.
func (s *simplifier) resolve(e env, name string) string {
	for {
		v, ok := e[name]
		if !ok || v.alias == "" {
			return name
		}
		name = v.alias
	}
}

// expr rewrites an expression under the environment: constants fold,
// constant locals inline, aliased locals canonicalise to their root (which
// lets x==y fold to 1 when both alias the same local).
func (s *simplifier) expr(e env, x cprog.Expr) cprog.Expr {
	switch ex := x.(type) {
	case cprog.Const:
		return ex
	case cprog.Ref:
		if s.shared[ex.Name] {
			return ex
		}
		root := s.resolve(e, ex.Name)
		if v, ok := e[root]; ok && v.isConst {
			return cprog.C(ToSigned(v.c, s.width))
		}
		if root != ex.Name {
			return cprog.Ref{Name: root}
		}
		return ex
	case cprog.UnOp:
		xx := s.expr(e, ex.X)
		if c, ok := constOf(xx); ok {
			if v, ok := FoldUn(ex.Op, c, s.width); ok {
				return cprog.C(ToSigned(v, s.width))
			}
		}
		return cprog.UnOp{Op: ex.Op, X: xx}
	case cprog.BinOp:
		l := s.expr(e, ex.L)
		r := s.expr(e, ex.R)
		if cl, ok := constOf(l); ok {
			if cr, ok := constOf(r); ok {
				if v, ok := FoldBin(ex.Op, cl, cr, s.width); ok {
					return cprog.C(ToSigned(v, s.width))
				}
			}
		}
		// Same-root locals compare equal: x==x folds even when the value
		// is unknown (copy propagation's payoff).
		if lr, lok := l.(cprog.Ref); lok && !s.shared[lr.Name] {
			if rr, rok := r.(cprog.Ref); rok && lr.Name == rr.Name {
				switch ex.Op {
				case cprog.OpEq, cprog.OpLe, cprog.OpGe:
					return cprog.C(1)
				case cprog.OpNe, cprog.OpLt, cprog.OpGt:
					return cprog.C(0)
				case cprog.OpSub, cprog.OpBitXor:
					return cprog.C(0)
				case cprog.OpBitAnd, cprog.OpBitOr:
					return lr
				}
			}
		}
		return cprog.BinOp{Op: ex.Op, L: l, R: r}
	}
	return x
}

func constOf(x cprog.Expr) (uint64, bool) {
	if c, ok := x.(cprog.Const); ok {
		return uint64(c.Value), true
	}
	return 0, false
}

// bind updates the environment for a local assignment whose rewritten RHS
// is known.
func (s *simplifier) bind(e env, name string, rhs cprog.Expr) {
	e.kill(name)
	switch r := rhs.(type) {
	case cprog.Const:
		e[name] = val{isConst: true, c: uint64(r.Value) & Mask(s.width)}
	case cprog.Ref:
		if !s.shared[r.Name] && r.Name != name {
			e[name] = val{alias: r.Name}
		}
	}
}

// stmts rewrites a statement list under the running environment.
func (s *simplifier) stmts(list []cprog.Stmt, e env) []cprog.Stmt {
	var out []cprog.Stmt
	for _, st := range list {
		out = s.stmt(st, e, out)
	}
	return out
}

func (s *simplifier) stmt(st cprog.Stmt, e env, out []cprog.Stmt) []cprog.Stmt {
	switch t := st.(type) {
	case cprog.Local:
		s.scope[t.Name] = true
		init := t.Init
		if init != nil {
			folded := s.expr(e, init)
			if !sameExpr(folded, init) {
				s.stats.FoldedAssigns++
			}
			init = folded
		}
		s.bind(e, t.Name, initOrZero(init))
		return append(out, cprog.Local{Name: t.Name, Init: init})

	case cprog.Assign:
		rhs := s.expr(e, t.Rhs)
		if !sameExpr(rhs, t.Rhs) {
			s.stats.FoldedAssigns++
		}
		if s.shared[t.Lhs] {
			if !s.used[t.Lhs] && !refsShared(rhs, s.shared) {
				s.stats.DeadWrites++
				return out
			}
			return append(out, cprog.Assign{Lhs: t.Lhs, Rhs: rhs})
		}
		s.bind(e, t.Lhs, rhs)
		return append(out, cprog.Assign{Lhs: t.Lhs, Rhs: rhs})

	case cprog.Havoc:
		if s.shared[t.Name] && !s.used[t.Name] {
			s.stats.DeadWrites++
			return out
		}
		if !s.shared[t.Name] {
			e.kill(t.Name)
		}
		return append(out, t)

	case cprog.Assume:
		cond := s.expr(e, t.Cond)
		if c, ok := constOf(cond); ok {
			s.stats.FoldedGuards++
			if c&Mask(s.width) != 0 {
				// assume(true) constrains nothing.
				s.stats.DroppedStmts++
				return out
			}
			// assume(false) kills the execution; it must survive.
			return append(out, cprog.Assume{Cond: cprog.C(0)})
		}
		return append(out, cprog.Assume{Cond: cond})

	case cprog.Assert:
		cond := s.expr(e, t.Cond)
		if c, ok := constOf(cond); ok {
			s.stats.FoldedGuards++
			if c&Mask(s.width) != 0 {
				// assert(true) can never fail.
				s.stats.DroppedStmts++
				return out
			}
			return append(out, cprog.Assert{Cond: cprog.C(0)})
		}
		return append(out, cprog.Assert{Cond: cond})

	case cprog.If:
		cond := s.expr(e, t.Cond)
		if c, ok := constOf(cond); ok {
			s.stats.FoldedGuards++
			s.stats.DroppedStmts++
			branch, dropped := t.Then, t.Else
			if c&Mask(s.width) == 0 {
				branch, dropped = t.Else, t.Then
			}
			// The encoder's branch merge zero-fills locals declared only
			// on the untaken side; keep those declarations alive so later
			// references stay valid.
			out = s.preserveDecls(dropped, e, out)
			for _, inner := range branch {
				out = s.stmt(inner, e, out)
			}
			return out
		}
		thenEnv := e.clone()
		elseEnv := e.clone()
		thenOut := s.stmts(t.Then, thenEnv)
		elseOut := s.stmts(t.Else, elseEnv)
		merged := thenEnv.merge(elseEnv)
		for k := range e { //mapiter:ok clears the map
			delete(e, k)
		}
		for k, v := range merged { //mapiter:ok map-to-map copy
			e[k] = v
		}
		return append(out, cprog.If{Cond: cond, Then: thenOut, Else: elseOut})

	case cprog.While:
		cond := s.expr(e, t.Cond)
		if c, ok := constOf(cond); ok && c&Mask(s.width) == 0 {
			// while(false) never runs; its locals zero-fill like an
			// untaken branch's.
			s.stats.FoldedGuards++
			s.stats.DroppedStmts++
			return s.preserveDecls(t.Body, e, out)
		}
		// The body may run any number of times: locals it writes are
		// unknown afterwards, and facts used inside must survive the
		// back edge, so rewrite the body under an environment cleared of
		// anything the body itself invalidates.
		bodyEnv := e.clone()
		killAssigned(t.Body, bodyEnv)
		inner := bodyEnv.clone()
		body := s.stmts(t.Body, inner)
		killAssigned(t.Body, e)
		return append(out, cprog.While{Cond: s.exprUnder(bodyEnv, t.Cond), Body: body})

	case cprog.Lock, cprog.Unlock, cprog.Fence:
		return append(out, st)

	case cprog.Atomic:
		// Never rewrite inside an atomic section; but its stores still
		// invalidate local facts, and its declarations enter scope.
		killAssigned(t.Body, e)
		markDecls(t.Body, s.scope)
		return append(out, t)
	}
	return append(out, st)
}

// preserveDecls emits zero-initialised declarations for locals a dropped
// statement list would have introduced, unless already in scope: the
// encoder's merge semantics give exactly zero to locals declared only on
// an untaken branch.
func (s *simplifier) preserveDecls(dropped []cprog.Stmt, e env, out []cprog.Stmt) []cprog.Stmt {
	decls := map[string]bool{}
	markDecls(dropped, decls)
	var names []string
	collectDeclOrder(dropped, decls, &names)
	for _, name := range names {
		if s.scope[name] {
			continue
		}
		s.scope[name] = true
		e.kill(name)
		e[name] = val{isConst: true}
		out = append(out, cprog.Local{Name: name, Init: cprog.C(0)})
	}
	return out
}

// markDecls records every local declared anywhere in the list.
func markDecls(list []cprog.Stmt, into map[string]bool) {
	for _, st := range list {
		switch t := st.(type) {
		case cprog.Local:
			into[t.Name] = true
		case cprog.If:
			markDecls(t.Then, into)
			markDecls(t.Else, into)
		case cprog.While:
			markDecls(t.Body, into)
		case cprog.Atomic:
			markDecls(t.Body, into)
		}
	}
}

// collectDeclOrder lists decls in first-syntactic-occurrence order.
func collectDeclOrder(list []cprog.Stmt, want map[string]bool, names *[]string) {
	for _, st := range list {
		switch t := st.(type) {
		case cprog.Local:
			if want[t.Name] {
				want[t.Name] = false
				*names = append(*names, t.Name)
			}
		case cprog.If:
			collectDeclOrder(t.Then, want, names)
			collectDeclOrder(t.Else, want, names)
		case cprog.While:
			collectDeclOrder(t.Body, want, names)
		case cprog.Atomic:
			collectDeclOrder(t.Body, want, names)
		}
	}
}

// exprUnder rewrites the loop condition under the loop-invariant
// environment (facts not killed by the body).
func (s *simplifier) exprUnder(e env, x cprog.Expr) cprog.Expr {
	return s.expr(e, x)
}

// killAssigned invalidates environment facts for every local a statement
// list can write.
func killAssigned(list []cprog.Stmt, e env) {
	for _, st := range list {
		switch t := st.(type) {
		case cprog.Local:
			e.kill(t.Name)
		case cprog.Assign:
			e.kill(t.Lhs)
		case cprog.Havoc:
			e.kill(t.Name)
		case cprog.If:
			killAssigned(t.Then, e)
			killAssigned(t.Else, e)
		case cprog.While:
			killAssigned(t.Body, e)
		case cprog.Atomic:
			killAssigned(t.Body, e)
		}
	}
}

// refsShared reports whether the expression reads any shared variable.
func refsShared(x cprog.Expr, shared map[string]bool) bool {
	switch ex := x.(type) {
	case cprog.Ref:
		return shared[ex.Name]
	case cprog.UnOp:
		return refsShared(ex.X, shared)
	case cprog.BinOp:
		return refsShared(ex.L, shared) || refsShared(ex.R, shared)
	}
	return false
}

func initOrZero(x cprog.Expr) cprog.Expr {
	if x == nil {
		return cprog.C(0)
	}
	return x
}

// sameExpr is structural equality, used only to decide whether a rewrite
// counts as a fold for the stats.
func sameExpr(a, b cprog.Expr) bool {
	switch av := a.(type) {
	case cprog.Const:
		bv, ok := b.(cprog.Const)
		return ok && av.Value == bv.Value
	case cprog.Ref:
		bv, ok := b.(cprog.Ref)
		return ok && av.Name == bv.Name
	case cprog.UnOp:
		bv, ok := b.(cprog.UnOp)
		return ok && av.Op == bv.Op && sameExpr(av.X, bv.X)
	case cprog.BinOp:
		bv, ok := b.(cprog.BinOp)
		return ok && av.Op == bv.Op && sameExpr(av.L, bv.L) && sameExpr(av.R, bv.R)
	}
	return false
}
