package dataflow

import (
	"sort"

	"zpre/internal/cprog"
)

// Facts is the result of the cross-thread value analysis: for every shared
// variable, a signed width-bit interval covering every value the variable
// can ever hold — its initial value and every value any thread may store,
// at any loop bound.
//
// The fixpoint is bound-independent: it is computed over the looping source
// program (While bodies iterate to an inner post-fixpoint with widening),
// so a fact proved here stays valid as the incremental sweep unrolls
// further. That is the monotonicity the delta encoder relies on.
type Facts struct {
	Width  int
	ranges map[string]Interval
}

// Range is the sound over-approximation of every value the shared variable
// can hold. Unknown variables get Top.
func (f *Facts) Range(name string) Interval {
	if f == nil {
		return Top(8)
	}
	if iv, ok := f.ranges[name]; ok {
		return iv
	}
	return Top(f.Width)
}

// Vars lists the analysed shared variables, sorted.
func (f *Facts) Vars() []string {
	if f == nil {
		return nil
	}
	vars := make([]string, 0, len(f.ranges))
	for v := range f.ranges { //mapiter:ok keys sorted below
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// absEnv maps thread-local names to intervals. Shared variables never
// appear here; they are looked up in the global ranges.
type absEnv map[string]Interval

func (e absEnv) clone() absEnv {
	c := make(absEnv, len(e))
	for k, v := range e { //mapiter:ok map-to-map copy
		c[k] = v
	}
	return c
}

// joinInto widens e towards the join with o, in place, mirroring the
// encoder's branch merge: a name missing on one side defaults to the
// singleton {0} (the encoder's zero bit-vector default).
func (e absEnv) joinInto(o absEnv) {
	zero := Interval{}
	for k, v := range o { //mapiter:ok join is commutative; result is a map
		if cur, ok := e[k]; ok {
			e[k] = Join(cur, v)
		} else {
			e[k] = Join(zero, v)
		}
	}
	for k, v := range e { //mapiter:ok join is commutative; result is a map
		if _, ok := o[k]; !ok {
			e[k] = Join(v, zero)
		}
	}
}

func (e absEnv) equal(o absEnv) bool {
	if len(e) != len(o) {
		return false
	}
	for k, v := range e { //mapiter:ok order-independent equality test
		if o[k] != v {
			return false
		}
	}
	return true
}

// analyzer runs the whole-program fixpoint.
type analyzer struct {
	width   int
	shared  map[string]bool
	ranges  map[string]Interval
	grows   map[string]int // per-variable growth count, for widening
	changed bool
}

// widenAfter is the number of range growths a shared variable tolerates
// before its range widens to Top. Cross-thread feedback (thread A's writes
// feed thread B's reads feed A again) converges within a few rounds or not
// at all, so the cutoff is small.
const widenAfter = 3

// Analyze computes shared-variable value ranges for the program at the
// given bit width. The program may contain loops; their bodies are
// iterated to an inner post-fixpoint, so the returned facts hold for every
// unrolling depth.
//
// Soundness: a variable's range always contains its initial value, and is
// closed under every store any thread can perform given that all shared
// reads yield values inside the ranges (Lock stores 1, Unlock stores 0,
// Havoc stores Top). By induction over any interleaving, every value ever
// stored — and hence ever read — lies inside the final ranges.
func Analyze(p *cprog.Program, width int) *Facts {
	a := &analyzer{
		width:  width,
		shared: make(map[string]bool, len(p.Shared)),
		ranges: make(map[string]Interval, len(p.Shared)),
		grows:  make(map[string]int),
	}
	for _, s := range p.Shared {
		a.shared[s.Name] = true
		a.ranges[s.Name] = FromConst(s.Init, width)
	}
	// Iterate whole-program rounds until no shared range grows. Widening
	// bounds the number of growths per variable, so this terminates.
	for round := 0; ; round++ {
		a.changed = false
		for _, th := range p.Threads {
			a.walkStmts(th.Body, absEnv{})
		}
		a.walkStmts(p.Post, absEnv{})
		if !a.changed {
			break
		}
	}
	return &Facts{Width: width, ranges: a.ranges}
}

// record folds a stored value into a shared variable's range, widening
// after repeated growth.
func (a *analyzer) record(name string, v Interval) {
	cur, ok := a.ranges[name]
	if !ok {
		cur = Empty()
	}
	next := Join(cur, v)
	if next == cur {
		return
	}
	a.grows[name]++
	if a.grows[name] > widenAfter {
		next = Widen(cur, next, a.width)
		if a.grows[name] > 2*widenAfter {
			next = Top(a.width)
		}
	}
	a.ranges[name] = next
	a.changed = true
}

// eval abstracts an expression under the local environment, with shared
// reads drawn from the current global ranges.
func (a *analyzer) eval(env absEnv, x cprog.Expr) Interval {
	switch ex := x.(type) {
	case cprog.Const:
		return FromConst(ex.Value, a.width)
	case cprog.Ref:
		if a.shared[ex.Name] {
			if iv, ok := a.ranges[ex.Name]; ok {
				return iv
			}
			return Top(a.width)
		}
		if iv, ok := env[ex.Name]; ok {
			return iv
		}
		// Undeclared local: the encoder defaults it to zero.
		return Interval{}
	case cprog.UnOp:
		return UnInterval(ex.Op, a.eval(env, ex.X), a.width)
	case cprog.BinOp:
		return BinInterval(ex.Op, a.eval(env, ex.L), a.eval(env, ex.R), a.width)
	}
	return Top(a.width)
}

// walkStmts interprets a statement list abstractly, mutating env and
// recording shared stores. Returns the environment after the list.
func (a *analyzer) walkStmts(stmts []cprog.Stmt, env absEnv) absEnv {
	for _, st := range stmts {
		env = a.walkStmt(st, env)
	}
	return env
}

func (a *analyzer) walkStmt(st cprog.Stmt, env absEnv) absEnv {
	switch s := st.(type) {
	case cprog.Local:
		if s.Init != nil {
			env[s.Name] = a.eval(env, s.Init)
		} else {
			env[s.Name] = Interval{}
		}
	case cprog.Assign:
		v := a.eval(env, s.Rhs)
		if a.shared[s.Lhs] {
			a.record(s.Lhs, v)
		} else {
			env[s.Lhs] = v
		}
	case cprog.Havoc:
		if a.shared[s.Name] {
			a.record(s.Name, Top(a.width))
		} else {
			env[s.Name] = Top(a.width)
		}
	case cprog.Lock:
		// The test-and-set acquire stores 1 into the mutex word.
		a.record(s.Mutex, FromConst(1, a.width))
	case cprog.Unlock:
		a.record(s.Mutex, FromConst(0, a.width))
	case cprog.If:
		a.eval(env, s.Cond) // reads feed nothing, but keep symmetry cheap
		thenEnv := a.walkStmts(s.Then, env.clone())
		elseEnv := a.walkStmts(s.Else, env.clone())
		thenEnv.joinInto(elseEnv)
		return thenEnv
	case cprog.While:
		// Inner fixpoint: the loop environment covers entry (zero
		// iterations) and every further iteration; widening after a few
		// rounds forces termination. Shared stores inside the body are
		// recorded every round, so ranges reach their own fixpoint too.
		loopEnv := env
		for iter := 0; ; iter++ {
			out := a.walkStmts(s.Body, loopEnv.clone())
			merged := loopEnv.clone()
			merged.joinInto(out)
			if merged.equal(loopEnv) {
				break
			}
			if iter >= widenAfter {
				for k, v := range merged { //mapiter:ok per-key widening, result is a map
					if old, ok := loopEnv[k]; ok && v != old {
						merged[k] = Widen(old, v, a.width)
					}
				}
			}
			if iter >= 2*widenAfter {
				for k := range merged { //mapiter:ok per-key overwrite, result is a map
					merged[k] = Top(a.width)
				}
			}
			loopEnv = merged
		}
		return loopEnv
	case cprog.Atomic:
		return a.walkStmts(s.Body, env)
	case cprog.Assume, cprog.Assert, cprog.Fence:
		// Assumes could refine, but refinement here would be unsound for
		// the cross-thread ranges (another thread may observe the store
		// before the assume filters the execution). Skip.
	}
	return env
}
