package dataflow

import (
	"math/rand"
	"testing"

	"zpre/internal/cprog"
)

const testWidth = 8

// TestFoldMatchesInterpSemantics cross-checks FoldBin/FoldUn against a
// direct transliteration of interp's evalRaw on random masked values.
func TestFoldMatchesInterpSemantics(t *testing.T) {
	mask := Mask(testWidth)
	toS := func(v uint64) int64 { return ToSigned(v, testWidth) }
	b2 := func(b bool) uint64 { return b2u(b) }
	ref := func(op cprog.Op, l, r uint64) (uint64, bool) {
		switch op {
		case cprog.OpAdd:
			return (l + r) & mask, true
		case cprog.OpSub:
			return (l - r) & mask, true
		case cprog.OpMul:
			return (l * r) & mask, true
		case cprog.OpBitAnd:
			return l & r, true
		case cprog.OpBitOr:
			return l | r, true
		case cprog.OpBitXor:
			return l ^ r, true
		case cprog.OpShl:
			if r >= testWidth {
				return 0, true
			}
			return (l << r) & mask, true
		case cprog.OpShr:
			if r >= testWidth {
				return 0, true
			}
			return l >> r, true
		case cprog.OpEq:
			return b2(l == r), true
		case cprog.OpNe:
			return b2(l != r), true
		case cprog.OpLt:
			return b2(toS(l) < toS(r)), true
		case cprog.OpLe:
			return b2(toS(l) <= toS(r)), true
		case cprog.OpGt:
			return b2(toS(l) > toS(r)), true
		case cprog.OpGe:
			return b2(toS(l) >= toS(r)), true
		case cprog.OpLAnd:
			return b2(l != 0 && r != 0), true
		case cprog.OpLOr:
			return b2(l != 0 || r != 0), true
		}
		return 0, false
	}
	rng := rand.New(rand.NewSource(5))
	ops := []cprog.Op{
		cprog.OpAdd, cprog.OpSub, cprog.OpMul, cprog.OpBitAnd, cprog.OpBitOr,
		cprog.OpBitXor, cprog.OpShl, cprog.OpShr, cprog.OpEq, cprog.OpNe,
		cprog.OpLt, cprog.OpLe, cprog.OpGt, cprog.OpGe, cprog.OpLAnd, cprog.OpLOr,
	}
	for i := 0; i < 5000; i++ {
		op := ops[rng.Intn(len(ops))]
		l := rng.Uint64() & mask
		r := rng.Uint64() & mask
		want, _ := ref(op, l, r)
		got, ok := FoldBin(op, l, r, testWidth)
		if !ok || got != want {
			t.Fatalf("FoldBin(%v, %d, %d) = %d, want %d", op, l, r, got, want)
		}
	}
	for i := 0; i < 1000; i++ {
		v := rng.Uint64() & mask
		for _, op := range []cprog.Op{cprog.OpNeg, cprog.OpBitNot, cprog.OpLNot} {
			var want uint64
			switch op {
			case cprog.OpNeg:
				want = (-v) & mask
			case cprog.OpBitNot:
				want = (^v) & mask
			case cprog.OpLNot:
				want = b2(v == 0)
			}
			got, ok := FoldUn(op, v, testWidth)
			if !ok || got != want {
				t.Fatalf("FoldUn(%v, %d) = %d, want %d", op, v, got, want)
			}
		}
	}
}

// TestIntervalSoundness samples subintervals and concrete points and checks
// that every abstract binary/unary result contains the concrete result.
func TestIntervalSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []cprog.Op{
		cprog.OpAdd, cprog.OpSub, cprog.OpMul, cprog.OpBitAnd, cprog.OpBitOr,
		cprog.OpBitXor, cprog.OpShl, cprog.OpShr, cprog.OpEq, cprog.OpNe,
		cprog.OpLt, cprog.OpLe, cprog.OpGt, cprog.OpGe, cprog.OpLAnd, cprog.OpLOr,
	}
	randIv := func() Interval {
		a := MinSigned(testWidth) + rng.Int63n(1<<testWidth)
		b := MinSigned(testWidth) + rng.Int63n(1<<testWidth)
		if a > b {
			a, b = b, a
		}
		return Interval{Lo: a, Hi: b}
	}
	pick := func(iv Interval) uint64 {
		v := iv.Lo + rng.Int63n(iv.Hi-iv.Lo+1)
		return uint64(v) & Mask(testWidth)
	}
	for i := 0; i < 20000; i++ {
		op := ops[rng.Intn(len(ops))]
		a, b := randIv(), randIv()
		out := BinInterval(op, a, b, testWidth)
		l, r := pick(a), pick(b)
		cv, ok := FoldBin(op, l, r, testWidth)
		if !ok {
			continue
		}
		if !out.Contains(ToSigned(cv, testWidth)) {
			t.Fatalf("%v: %s op %s = %s does not contain concrete %d (from %d, %d)",
				op, a, b, out, ToSigned(cv, testWidth), l, r)
		}
	}
	for i := 0; i < 5000; i++ {
		a := randIv()
		for _, op := range []cprog.Op{cprog.OpNeg, cprog.OpBitNot, cprog.OpLNot} {
			out := UnInterval(op, a, testWidth)
			v := pick(a)
			cv, _ := FoldUn(op, v, testWidth)
			if !out.Contains(ToSigned(cv, testWidth)) {
				t.Fatalf("%v: op %s = %s does not contain concrete %d (from %d)",
					op, a, out, ToSigned(cv, testWidth), v)
			}
		}
	}
}

func TestIntervalLattice(t *testing.T) {
	a := Interval{Lo: -3, Hi: 5}
	b := Interval{Lo: 4, Hi: 9}
	if j := Join(a, b); j != (Interval{Lo: -3, Hi: 9}) {
		t.Errorf("Join = %s", j)
	}
	if m := Meet(a, b); m != (Interval{Lo: 4, Hi: 5}) {
		t.Errorf("Meet = %s", m)
	}
	if !a.Disjoint(Interval{Lo: 6, Hi: 7}) {
		t.Error("Disjoint missed a gap")
	}
	if a.Disjoint(b) {
		t.Error("Disjoint on overlapping intervals")
	}
	if Meet(a, Interval{Lo: 6, Hi: 7}) != Empty() || !Meet(a, Interval{Lo: 6, Hi: 7}).IsEmpty() {
		t.Error("Meet of disjoint intervals should be empty")
	}
	if !Empty().Disjoint(a) || !a.Disjoint(Empty()) {
		t.Error("Empty must be disjoint from everything")
	}
	w := Widen(Interval{Lo: 0, Hi: 2}, Interval{Lo: 0, Hi: 3}, testWidth)
	if w.Hi != MaxSigned(testWidth) || w.Lo != 0 {
		t.Errorf("Widen = %s", w)
	}
}

// TestAnalyzeRanges checks the cross-thread fixpoint on a two-thread
// program with a bounded loop, a mutex, and a havoc.
func TestAnalyzeRanges(t *testing.T) {
	p := &cprog.Program{
		Name: "ranges",
		Shared: []cprog.SharedDecl{
			{Name: "x", Init: 0}, {Name: "flag", Init: 0},
			{Name: "m", Init: 0}, {Name: "h", Init: 2},
		},
		Threads: []*cprog.Thread{
			{Name: "t0", Body: []cprog.Stmt{
				cprog.Lock{Mutex: "m"},
				cprog.Assign{Lhs: "x", Rhs: cprog.C(3)},
				cprog.Unlock{Mutex: "m"},
				cprog.Assign{Lhs: "flag", Rhs: cprog.C(1)},
			}},
			{Name: "t1", Body: []cprog.Stmt{
				cprog.Havoc{Name: "h"},
				cprog.Assign{Lhs: "x", Rhs: cprog.Add(cprog.V("x"), cprog.C(1))},
			}},
		},
	}
	f := Analyze(p, testWidth)
	if got := f.Range("flag"); got != (Interval{Lo: 0, Hi: 1}) {
		t.Errorf("flag range = %s, want [0,1]", got)
	}
	if got := f.Range("m"); got != (Interval{Lo: 0, Hi: 1}) {
		t.Errorf("m range = %s, want [0,1]", got)
	}
	if got := f.Range("h"); !got.IsTop(testWidth) {
		t.Errorf("h range = %s, want top", got)
	}
	// x: init 0, store 3, store x+1 where x feeds back — the increment
	// cycle widens to top (wrap-around makes every value reachable), but
	// the result must still cover the concrete stores.
	if got := f.Range("x"); !got.Contains(0) || !got.Contains(3) {
		t.Errorf("x range = %s, want to contain 0 and 3", got)
	}
}

// TestAnalyzeLoopTermination makes sure self-incrementing loops reach a
// fixpoint via widening rather than diverging.
func TestAnalyzeLoopTermination(t *testing.T) {
	p := &cprog.Program{
		Name:   "loop",
		Shared: []cprog.SharedDecl{{Name: "g", Init: 0}},
		Threads: []*cprog.Thread{
			{Name: "t0", Body: []cprog.Stmt{
				cprog.Local{Name: "c", Init: cprog.C(0)},
				cprog.While{
					Cond: cprog.Lt(cprog.V("c"), cprog.C(100)),
					Body: []cprog.Stmt{
						cprog.Assign{Lhs: "g", Rhs: cprog.Add(cprog.V("g"), cprog.C(1))},
						cprog.Assign{Lhs: "c", Rhs: cprog.Add(cprog.V("c"), cprog.C(1))},
					},
				},
			}},
		},
	}
	// The analysis ignores loop trip counts, so g widens to top — the
	// test's payload is that the fixpoint terminates at all.
	f := Analyze(p, testWidth)
	if got := f.Range("g"); !got.Contains(0) {
		t.Errorf("g range = %s, want to contain 0", got)
	}
}

// TestSimplifyFoldsAndPreservesDecls exercises constant folding, copy
// propagation, dead-branch inlining, and the zero-fill declaration
// preservation for locals of untaken branches.
func TestSimplifyFoldsAndPreservesDecls(t *testing.T) {
	p := &cprog.Program{
		Name:   "fold",
		Shared: []cprog.SharedDecl{{Name: "g", Init: 0}},
		Threads: []*cprog.Thread{
			{Name: "t0", Body: []cprog.Stmt{
				cprog.Local{Name: "a", Init: cprog.C(2)},
				cprog.Local{Name: "b", Init: cprog.Ref{Name: "a"}},
				cprog.If{
					Cond: cprog.Eq(cprog.V("a"), cprog.V("b")), // folds to 1
					Then: []cprog.Stmt{cprog.Assign{Lhs: "g", Rhs: cprog.Add(cprog.V("a"), cprog.C(1))}},
					Else: []cprog.Stmt{
						cprog.Local{Name: "z", Init: cprog.C(9)},
						cprog.Assign{Lhs: "g", Rhs: cprog.V("z")},
					},
				},
				cprog.Assign{Lhs: "g", Rhs: cprog.V("z")}, // z zero-fills
			}},
		},
		Post: []cprog.Stmt{cprog.Assert{Cond: cprog.Le(cprog.V("g"), cprog.C(9))}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("input invalid: %v", err)
	}
	out, st := Simplify(p, testWidth)
	if err := out.Validate(); err != nil {
		t.Fatalf("simplified program invalid: %v\n%s", err, cprog.Format(out))
	}
	if st.FoldedGuards == 0 {
		t.Errorf("expected the a==b guard to fold: %+v", st)
	}
	if st.FoldedAssigns == 0 {
		t.Errorf("expected copy-propagated assignments to fold: %+v", st)
	}
	// The taken branch's assignment must fold g = a+1 to g = 3.
	found := false
	var scan func(list []cprog.Stmt)
	scan = func(list []cprog.Stmt) {
		for _, s := range list {
			if as, ok := s.(cprog.Assign); ok && as.Lhs == "g" {
				if c, ok := as.Rhs.(cprog.Const); ok && c.Value == 3 {
					found = true
				}
			}
			if iff, ok := s.(cprog.If); ok {
				scan(iff.Then)
				scan(iff.Else)
			}
		}
	}
	scan(out.Threads[0].Body)
	if !found {
		t.Errorf("g = a+1 did not fold to g = 3:\n%s", cprog.Format(out))
	}
}

// TestSimplifyDeadWriteElimination drops stores to shared variables that
// no thread ever reads, but keeps mutexes and read variables.
func TestSimplifyDeadWriteElimination(t *testing.T) {
	p := &cprog.Program{
		Name: "dead",
		Shared: []cprog.SharedDecl{
			{Name: "sink", Init: 0}, {Name: "live", Init: 0}, {Name: "m", Init: 0},
		},
		Threads: []*cprog.Thread{
			{Name: "t0", Body: []cprog.Stmt{
				cprog.Assign{Lhs: "sink", Rhs: cprog.C(4)},
				cprog.Havoc{Name: "sink"},
				cprog.Lock{Mutex: "m"},
				cprog.Assign{Lhs: "live", Rhs: cprog.C(1)},
				cprog.Unlock{Mutex: "m"},
				// RHS reads a shared var: the store must survive even
				// though sink is dead, or the read event disappears.
				cprog.Assign{Lhs: "sink", Rhs: cprog.V("live")},
			}},
		},
		Post: []cprog.Stmt{cprog.Assert{Cond: cprog.Le(cprog.V("live"), cprog.C(1))}},
	}
	out, st := Simplify(p, testWidth)
	if err := out.Validate(); err != nil {
		t.Fatalf("simplified program invalid: %v", err)
	}
	if st.DeadWrites != 2 {
		t.Errorf("DeadWrites = %d, want 2 (const store + havoc):\n%s", st.DeadWrites, cprog.Format(out))
	}
	var sinkStores int
	for _, s := range out.Threads[0].Body {
		if as, ok := s.(cprog.Assign); ok && as.Lhs == "sink" {
			sinkStores++
		}
	}
	if sinkStores != 1 {
		t.Errorf("sink stores remaining = %d, want 1 (the shared-reading one)", sinkStores)
	}
}

// TestSimplifyKeepsFalseAssumes: assume(false) and assert(false) change
// satisfiability and must never be dropped.
func TestSimplifyKeepsFalseAssumes(t *testing.T) {
	p := &cprog.Program{
		Name:   "falsy",
		Shared: []cprog.SharedDecl{{Name: "g", Init: 0}},
		Threads: []*cprog.Thread{
			{Name: "t0", Body: []cprog.Stmt{
				cprog.Assume{Cond: cprog.C(0)},
				cprog.Assume{Cond: cprog.C(1)},
				cprog.Assert{Cond: cprog.Eq(cprog.C(2), cprog.C(2))},
			}},
		},
	}
	out, st := Simplify(p, testWidth)
	var assumes, asserts int
	for _, s := range out.Threads[0].Body {
		switch s.(type) {
		case cprog.Assume:
			assumes++
		case cprog.Assert:
			asserts++
		}
	}
	if assumes != 1 {
		t.Errorf("assumes = %d, want 1 (only the false one)", assumes)
	}
	if asserts != 0 {
		t.Errorf("asserts = %d, want 0 (always true)", asserts)
	}
	if st.DroppedStmts != 2 {
		t.Errorf("DroppedStmts = %d, want 2", st.DroppedStmts)
	}
}

// TestSimplifyLeavesAtomicAlone: atomic bodies must come out structurally
// untouched.
func TestSimplifyLeavesAtomicAlone(t *testing.T) {
	body := []cprog.Stmt{
		cprog.Assign{Lhs: "g", Rhs: cprog.Add(cprog.C(1), cprog.C(1))},
	}
	p := &cprog.Program{
		Name:   "atomic",
		Shared: []cprog.SharedDecl{{Name: "g", Init: 0}},
		Threads: []*cprog.Thread{
			{Name: "t0", Body: []cprog.Stmt{cprog.Atomic{Body: body}}},
		},
		Post: []cprog.Stmt{cprog.Assert{Cond: cprog.Le(cprog.V("g"), cprog.C(2))}},
	}
	out, _ := Simplify(p, testWidth)
	at, ok := out.Threads[0].Body[0].(cprog.Atomic)
	if !ok {
		t.Fatalf("atomic section vanished:\n%s", cprog.Format(out))
	}
	if as, ok := at.Body[0].(cprog.Assign); !ok {
		t.Fatal("atomic body changed shape")
	} else if _, isConst := as.Rhs.(cprog.Const); isConst {
		t.Error("atomic body was rewritten; 1+1 must stay unfolded")
	}
}
