// Package retry implements bounded retry with exponential backoff and full
// jitter, the policy AWS popularised for thundering-herd avoidance: the
// delay before attempt n is drawn uniformly from [0, min(Max, Base·2ⁿ)],
// so concurrent retriers spread out instead of synchronising on the same
// backoff schedule.
//
// The package is context-aware (a cancelled context aborts the sleep and
// returns immediately) and distinguishes transient from permanent failures:
// wrapping an error with Permanent stops the loop without consuming the
// remaining attempts. It is used by the zpred verification service (the
// degradation ladder retries transient solver failures between levels) and
// by evaluate's -resume path (transient checkpoint read failures).
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Policy bounds a retry loop.
type Policy struct {
	// MaxAttempts is the total number of calls, first try included
	// (default 3; values < 1 are treated as 1).
	MaxAttempts int
	// Base is the backoff unit: the cap before attempt n is Base·2ⁿ
	// (default 100ms).
	Base time.Duration
	// Max caps every individual delay (default 5s).
	Max time.Duration
	// Jitter maps the computed backoff cap to the actual sleep. The default
	// is full jitter — uniform in [0, cap). Tests override it for
	// determinism.
	Jitter func(cap time.Duration) time.Duration
	// Sleep replaces the delay primitive (tests). The default honours the
	// context during the wait.
	Sleep func(ctx context.Context, d time.Duration) error
}

// jitterRand backs the default full-jitter draw. rand.Rand is not safe for
// concurrent use, so the draw is mutex-guarded: retry loops sleep orders of
// magnitude longer than this lock is held.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func fullJitter(cap time.Duration) time.Duration {
	if cap <= 0 {
		return 0
	}
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return time.Duration(jitterRand.Int63n(int64(cap)))
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 3
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Jitter == nil {
		p.Jitter = fullJitter
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Backoff returns the jittered delay before retrying after attempt n
// (0-based): a uniform draw from [0, min(Max, Base·2ⁿ)).
func (p Policy) Backoff(attempt int) time.Duration {
	p = p.withDefaults()
	cap := p.Base
	for i := 0; i < attempt && cap < p.Max; i++ {
		cap *= 2
	}
	if cap > p.Max {
		cap = p.Max
	}
	return p.Jitter(cap)
}

// permanentError marks a failure the loop must not retry.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do returns it immediately instead of retrying.
// A nil err returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Do calls op until it returns nil, returns a Permanent error, the context
// is cancelled, or MaxAttempts calls have failed. Between failures it sleeps
// the jittered exponential backoff. The returned error is op's last error
// (unwrapped from Permanent); on cancellation mid-backoff the context error
// is attached so both causes survive errors.Is.
func Do(ctx context.Context, p Policy, op func(ctx context.Context, attempt int) error) error {
	p = p.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	var last error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if last == nil {
				return err
			}
			return fmt.Errorf("%w (context: %w)", last, err)
		}
		err := op(ctx, attempt)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		last = err
		if attempt == p.MaxAttempts-1 {
			break
		}
		if serr := p.Sleep(ctx, p.Backoff(attempt)); serr != nil {
			return fmt.Errorf("%w (context: %w)", last, serr)
		}
	}
	return last
}
