package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// instant removes real sleeping from a test policy while recording the
// delays Do would have waited.
func instant(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	var delays []time.Duration
	p := Policy{
		MaxAttempts: 5,
		Base:        10 * time.Millisecond,
		Max:         80 * time.Millisecond,
		Jitter:      func(cap time.Duration) time.Duration { return cap }, // deterministic: no jitter
		Sleep:       instant(&delays),
	}
	calls := 0
	err := Do(context.Background(), p, func(ctx context.Context, attempt int) error {
		if attempt != calls {
			t.Fatalf("attempt = %d, want %d", attempt, calls)
		}
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	// Two failures → two backoffs, doubling from Base.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(delays) != len(want) {
		t.Fatalf("delays = %v, want %v", delays, want)
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delay[%d] = %v, want %v", i, delays[i], want[i])
		}
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var delays []time.Duration
	p := Policy{
		MaxAttempts: 3,
		Jitter:      func(cap time.Duration) time.Duration { return 0 },
		Sleep:       instant(&delays),
	}
	calls := 0
	wantErr := errors.New("still broken")
	err := Do(context.Background(), p, func(ctx context.Context, attempt int) error {
		calls++
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (MaxAttempts)", calls)
	}
	if len(delays) != 2 {
		t.Fatalf("backoffs = %d, want 2 (no sleep after the final failure)", len(delays))
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	calls := 0
	inner := errors.New("bad request")
	err := Do(context.Background(), Policy{MaxAttempts: 5, Sleep: instant(new([]time.Duration))},
		func(ctx context.Context, attempt int) error {
			calls++
			return Permanent(inner)
		})
	if !errors.Is(err, inner) {
		t.Fatalf("err = %v, want %v", err, inner)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (permanent failures never retry)", calls)
	}
	if IsPermanent(err) {
		t.Fatalf("Do should unwrap the Permanent marker, got %v", err)
	}
}

func TestDoHonoursContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	transient := errors.New("transient")
	calls := 0
	err := Do(ctx, Policy{MaxAttempts: 10, Base: time.Millisecond},
		func(ctx context.Context, attempt int) error {
			calls++
			cancel() // cancel while "in flight": the backoff sleep must abort
			return transient
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if !errors.Is(err, transient) {
		t.Fatalf("err = %v, want the last op error in the chain", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retries after cancellation)", calls)
	}
}

func TestDoPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Do(ctx, Policy{}, func(ctx context.Context, attempt int) error {
		t.Fatal("op must not run under a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBackoffCapsAtMax(t *testing.T) {
	p := Policy{
		Base:   10 * time.Millisecond,
		Max:    35 * time.Millisecond,
		Jitter: func(cap time.Duration) time.Duration { return cap },
	}
	want := []time.Duration{
		10 * time.Millisecond, // 2^0
		20 * time.Millisecond, // 2^1
		35 * time.Millisecond, // 2^2 = 40ms, capped
		35 * time.Millisecond, // stays capped
	}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffFullJitterStaysInRange(t *testing.T) {
	p := Policy{Base: 8 * time.Millisecond, Max: time.Second}
	for attempt := 0; attempt < 6; attempt++ {
		cap := 8 * time.Millisecond << attempt
		if cap > time.Second {
			cap = time.Second
		}
		for i := 0; i < 50; i++ {
			d := p.Backoff(attempt)
			if d < 0 || d >= cap {
				t.Fatalf("Backoff(%d) = %v, want in [0, %v)", attempt, d, cap)
			}
		}
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must be nil")
	}
}
