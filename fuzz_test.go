package zpre

import (
	"fmt"
	"testing"
	"time"

	"zpre/internal/core"
	"zpre/internal/cprog"
	"zpre/internal/incremental"
	"zpre/internal/memmodel"
)

// fuzzSrc is a forgiving byte cursor: decoding stops cleanly when the
// input runs out, so every prefix of a crashing input is itself decodable
// and the fuzzer's minimizer stays effective.
type fuzzSrc struct {
	data []byte
	i    int
}

func (s *fuzzSrc) next() (byte, bool) {
	if s.i >= len(s.data) {
		return 0, false
	}
	b := s.data[s.i]
	s.i++
	return b, true
}

// decodeFuzzProgram maps a byte stream onto a small two-thread program in
// the corpus's idiom: shared counters, bounded while loops over a local
// counter, asserts/assumes over small constants. The same bytes always
// produce the same program.
func decodeFuzzProgram(data []byte) *cprog.Program {
	s := &fuzzSrc{data: data}
	p := &cprog.Program{Name: "fuzz"}
	names := []string{"g0", "g1"}
	for _, n := range names {
		p.Shared = append(p.Shared, cprog.SharedDecl{Name: n})
	}
	g := func(b byte) string { return names[int(b>>5)%len(names)] }
	val := func(b byte) cprog.Expr { return cprog.C(int64(b>>6) % 4) }

	var stmt func(depth int, counter string) (cprog.Stmt, bool)
	stmt = func(depth int, counter string) (cprog.Stmt, bool) {
		op, ok := s.next()
		if !ok {
			return nil, false
		}
		arg, _ := s.next()
		kind := int(op % 8)
		if depth > 0 && kind == 7 {
			kind = 0 // never nest loops: keeps bound-2 sweeps fast
		}
		switch kind {
		case 0:
			return cprog.Assign{Lhs: g(arg), Rhs: cprog.Add(cprog.V(g(arg)), val(arg))}, true
		case 1:
			return cprog.Assign{Lhs: g(arg), Rhs: val(arg)}, true
		case 2:
			return cprog.Assume{Cond: cprog.Le(cprog.V(g(arg)), cprog.C(6))}, true
		case 3:
			return cprog.Assert{Cond: cprog.Le(cprog.V(g(arg)), cprog.C(5))}, true
		case 4:
			return cprog.Havoc{Name: g(arg)}, true
		case 5:
			return cprog.Fence{}, true
		case 6:
			inner, ok := stmt(depth+1, counter)
			if !ok {
				inner = cprog.Fence{}
			}
			return cprog.If{
				Cond: cprog.Lt(cprog.V(g(arg)), cprog.C(2)),
				Then: []cprog.Stmt{inner},
			}, true
		default:
			inner, ok := stmt(depth+1, counter)
			if !ok {
				inner = cprog.Assign{Lhs: g(arg), Rhs: val(arg)}
			}
			body := []cprog.Stmt{
				inner,
				cprog.Assign{Lhs: counter, Rhs: cprog.Add(cprog.V(counter), cprog.C(1))},
			}
			return cprog.While{
				Cond: cprog.Lt(cprog.V(counter), cprog.C(int64(1+int(arg%2)))),
				Body: body,
			}, true
		}
	}
	for ti := 0; ti < 2; ti++ {
		counter := "c"
		body := []cprog.Stmt{cprog.Local{Name: counter, Init: cprog.C(0)}}
		for len(body) < 5 {
			st, ok := stmt(0, counter)
			if !ok {
				break
			}
			body = append(body, st)
		}
		p.Threads = append(p.Threads, &cprog.Thread{
			Name: fmt.Sprintf("t%d", ti),
			Body: body,
		})
	}
	p.Post = []cprog.Stmt{cprog.Assert{
		Cond: cprog.Le(cprog.Add(cprog.V("g0"), cprog.V("g1")), cprog.C(12)),
	}}
	return p
}

// FuzzIncrementalVsFresh decodes random byte streams into small concurrent
// programs and requires the incremental unroll sweep to agree with the
// fresh per-bound pipeline at bounds 1 and 2, under a byte-chosen memory
// model. Any divergence is a delta-encoding bug by construction.
func FuzzIncrementalVsFresh(f *testing.F) {
	f.Add([]byte("\x00\x00\x20\x08\x40\x07\x41\x03\x00"))
	f.Add([]byte("\x01\x07\x01\x04\x20\x03\x60\x00\x80\x05\x00"))
	f.Add([]byte("\x02\x0f\x81\x06\x20\x04\x40\x07\xc1\x02\x00\x01\x20"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		model := []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO}[int(data[0])%3]
		p := decodeFuzzProgram(data[1:])
		if err := p.Validate(); err != nil {
			t.Skipf("decoder produced invalid program: %v", err)
		}
		sweep, err := incremental.New(p, incremental.Options{
			Model:    model,
			Strategy: core.ZPRE,
			Width:    3,
			Timeout:  20 * time.Second,
		})
		if err != nil {
			t.Fatalf("incremental setup: %v\n%s", err, cprog.Format(p))
		}
		for k := 1; k <= 2; k++ {
			br, err := sweep.Next()
			if err != nil {
				t.Fatalf("incremental k%d: %v\n%s", k, err, cprog.Format(p))
			}
			rep, err := Verify(p, Options{
				Model:   model,
				Unroll:  k,
				Width:   3,
				Timeout: 20 * time.Second,
			})
			if err != nil {
				t.Fatalf("fresh k%d: %v\n%s", k, err, cprog.Format(p))
			}
			if rep.Verdict == Unknown || br.Verdict == incremental.Unknown {
				t.Skipf("inconclusive at k%d (fresh=%v incremental=%v)", k, rep.Verdict, br.Verdict)
			}
			if (rep.Verdict == Unsafe) != (br.Verdict == incremental.Unsafe) {
				t.Fatalf("k%d@%s: fresh=%v incremental=%v\n%s",
					k, model, rep.Verdict, br.Verdict, cprog.Format(p))
			}
		}
	})
}
