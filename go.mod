module zpre

go 1.22
