package zpre

import (
	"testing"
	"time"

	"zpre/internal/core"
	"zpre/internal/incremental"
	"zpre/internal/memmodel"
	"zpre/internal/rg"
	"zpre/internal/svcomp"
)

// TestRGProofRateGate enforces the headline claim of the rely-guarantee
// engine: at the default engine settings it proves at least 25% of the
// safe (benchmark, model) pairs in the corpus unbounded-safe, and every
// such proof discharges the pair with zero SAT decisions — the backend
// never runs. It also re-checks soundness end to end: a pair whose ground
// truth is unsafe must never come back UnboundedSafe.
func TestRGProofRateGate(t *testing.T) {
	models := []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO}
	safePairs, proved := 0, 0
	for _, b := range svcomp.All() {
		for _, model := range models {
			rep, err := Verify(b.Program, Options{
				Model:   model,
				Unroll:  1,
				Timeout: 30 * time.Second,
				RG:      true,
			})
			if err != nil {
				t.Fatalf("%s@%s: %v", b.Name, model, err)
			}
			if rep.Verdict == UnboundedSafe {
				if !rep.RGProved {
					t.Errorf("%s@%s: UnboundedSafe without RGProved", b.Name, model)
				}
				if rep.SolverStats.Decisions != 0 || rep.SolverStats.Conflicts != 0 {
					t.Errorf("%s@%s: UnboundedSafe but the solver ran (%d decisions, %d conflicts)",
						b.Name, model, rep.SolverStats.Decisions, rep.SolverStats.Conflicts)
				}
				if rep.RGStabilizeIters <= 0 {
					t.Errorf("%s@%s: UnboundedSafe with %d fixpoint rounds", b.Name, model, rep.RGStabilizeIters)
				}
				if b.Expected[model] == svcomp.ExpectUnsafe {
					t.Errorf("UNSOUND: %s@%s proved unbounded-safe but ground truth is unsafe", b.Name, model)
				}
			}
			if b.Expected[model] == svcomp.ExpectSafe {
				safePairs++
				if rep.Verdict == UnboundedSafe {
					proved++
				}
			}
		}
	}
	rate := float64(proved) / float64(safePairs)
	t.Logf("rg proved %d/%d safe (benchmark,model) pairs unbounded-safe (%.1f%%)",
		proved, safePairs, 100*rate)
	if rate < 0.25 {
		t.Fatalf("proof rate %.1f%% below the 25%% gate (%d/%d)", 100*rate, proved, safePairs)
	}
}

// TestRGDifferential is the injection correctness and usefulness gate:
// across the corpus, all three models, fresh pipeline and incremental
// sweep,
//
//   - on pairs the engine proves, the plain pipeline must agree the
//     program is safe at every bound (the unbounded-safe short-circuit
//     only ever replaces Safe);
//   - on unproven pairs, the verdict with injected invariants must equal
//     the plain verdict at every bound (injection is equisatisfiable);
//   - injected invariants must not make search harder: summed over all
//     unproven solves, decisions+conflicts with -dataflow -rg must not
//     exceed the -dataflow-only baseline. (The comparison is aggregate,
//     not per-solve: added unit constraints can reshuffle VSIDS branch
//     order on an individual instance, but across the corpus they may
//     only prune.)
func TestRGDifferential(t *testing.T) {
	models := []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO}
	maxBound := 4
	if testing.Short() {
		maxBound = 2
	}
	var baseWork, rgWork uint64
	checks, provedPairs := 0, 0
	for _, b := range svcomp.All() {
		for _, model := range models {
			res, err := rg.Prove(b.Program, rg.Options{Model: model})
			if err != nil {
				t.Fatalf("%s@%s: rg: %v", b.Name, model, err)
			}
			bounds := incBounds(b.Program, maxBound)

			// Incremental sweep with injected ranges for unproven pairs;
			// proved pairs skip the sweep entirely (the harness does the
			// same), so the fresh plain run below is their cross-check.
			var sweep *incremental.Sweep
			if !res.Proved {
				sweep, err = incremental.New(b.Program, incremental.Options{
					Model:    model,
					Strategy: core.ZPRE,
					Timeout:  30 * time.Second,
					Dataflow: true,
					RGRanges: res.Ranges,
				})
				if err != nil {
					t.Fatalf("%s@%s: incremental setup: %v", b.Name, model, err)
				}
			} else {
				provedPairs++
			}

			for _, k := range bounds {
				base, err := Verify(b.Program, Options{
					Model:    model,
					Strategy: core.ZPRE,
					Unroll:   k,
					Timeout:  30 * time.Second,
					Dataflow: true,
				})
				if err != nil {
					t.Fatalf("%s@%s/k%d: baseline solve: %v", b.Name, model, k, err)
				}
				if base.Verdict == Unknown {
					t.Fatalf("%s@%s/k%d: baseline inconclusive", b.Name, model, k)
				}
				if res.Proved {
					if base.Verdict == Unsafe {
						t.Errorf("UNSOUND: %s@%s/k%d: rg proved but plain dataflow solve is Unsafe",
							b.Name, model, k)
					}
					checks++
					continue
				}
				withRG, err := Verify(b.Program, Options{
					Model:    model,
					Strategy: core.ZPRE,
					Unroll:   k,
					Timeout:  30 * time.Second,
					Dataflow: true,
					RG:       true,
					RGResult: res,
				})
				if err != nil {
					t.Fatalf("%s@%s/k%d: rg solve: %v", b.Name, model, k, err)
				}
				if withRG.Verdict == Unknown {
					t.Fatalf("%s@%s/k%d: rg solve inconclusive", b.Name, model, k)
				}
				if base.Verdict != withRG.Verdict {
					t.Errorf("%s@%s/k%d: dataflow=%v dataflow+rg=%v",
						b.Name, model, k, base.Verdict, withRG.Verdict)
				}
				baseWork += base.SolverStats.Decisions + base.SolverStats.Conflicts
				rgWork += withRG.SolverStats.Decisions + withRG.SolverStats.Conflicts

				br, err := sweep.Next()
				if err != nil {
					t.Fatalf("%s@%s/k%d: incremental rg: %v", b.Name, model, k, err)
				}
				if (base.Verdict == Unsafe) != (br.Verdict == incremental.Unsafe) ||
					br.Verdict == incremental.Unknown {
					t.Errorf("%s@%s/k%d: fresh=%v incremental+rg=%v",
						b.Name, model, k, base.Verdict, br.Verdict)
				}
				checks++
			}
		}
	}
	t.Logf("%d comparisons (%d pairs rg-proved); search work: baseline=%d rg=%d",
		checks, provedPairs, baseWork, rgWork)
	if checks < 100 {
		t.Fatalf("only %d corpus comparisons ran; corpus shrank?", checks)
	}
	if provedPairs == 0 {
		t.Fatal("rg proved nothing on the corpus")
	}
	if rgWork > baseWork {
		t.Errorf("injected invariants made search harder in aggregate: baseline=%d rg=%d",
			baseWork, rgWork)
	}
}
