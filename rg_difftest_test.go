package zpre

import (
	"testing"
	"time"

	"zpre/internal/core"
	"zpre/internal/incremental"
	"zpre/internal/memmodel"
	"zpre/internal/rg"
	"zpre/internal/svcomp"
)

// TestRGProofRateGate enforces the headline claim of the rely-guarantee
// engine: with the difference-bound domain it proves at least 35% of the
// safe (benchmark, model) pairs in the corpus unbounded-safe, and every
// such proof discharges the pair with zero SAT decisions — the backend
// never runs. It also re-checks soundness end to end: a pair whose ground
// truth is unsafe must never come back UnboundedSafe.
func TestRGProofRateGate(t *testing.T) {
	models := []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO}
	safePairs, proved := 0, 0
	for _, b := range svcomp.All() {
		for _, model := range models {
			rep, err := Verify(b.Program, Options{
				Model:    model,
				Unroll:   1,
				Timeout:  30 * time.Second,
				RG:       true,
				RGDomain: rg.DomainDBM,
			})
			if err != nil {
				t.Fatalf("%s@%s: %v", b.Name, model, err)
			}
			if rep.Verdict == UnboundedSafe {
				if !rep.RGProved {
					t.Errorf("%s@%s: UnboundedSafe without RGProved", b.Name, model)
				}
				if rep.SolverStats.Decisions != 0 || rep.SolverStats.Conflicts != 0 {
					t.Errorf("%s@%s: UnboundedSafe but the solver ran (%d decisions, %d conflicts)",
						b.Name, model, rep.SolverStats.Decisions, rep.SolverStats.Conflicts)
				}
				if rep.RGStabilizeIters <= 0 {
					t.Errorf("%s@%s: UnboundedSafe with %d fixpoint rounds", b.Name, model, rep.RGStabilizeIters)
				}
				if b.Expected[model] == svcomp.ExpectUnsafe {
					t.Errorf("UNSOUND: %s@%s proved unbounded-safe but ground truth is unsafe", b.Name, model)
				}
			}
			if b.Expected[model] == svcomp.ExpectSafe {
				safePairs++
				if rep.Verdict == UnboundedSafe {
					proved++
				}
			}
		}
	}
	rate := float64(proved) / float64(safePairs)
	t.Logf("rg proved %d/%d safe (benchmark,model) pairs unbounded-safe (%.1f%%)",
		proved, safePairs, 100*rate)
	if rate < 0.35 {
		t.Fatalf("proof rate %.1f%% below the 35%% gate (%d/%d)", 100*rate, proved, safePairs)
	}
}

// TestRGDBMIncrRaceWeak is the zone domain's end-to-end regression: the
// weak-memory increment race is exactly the shape the interval domain
// loses (each thread's contribution is [1,2] but only the RELATION between
// the contributions bounds the exit sum), so the facade must return
// UnboundedSafe under -rg-domain=dbm at every memory model, without ever
// running the backend. The proof outline itself is pinned by the golden
// files in internal/rg/testdata.
func TestRGDBMIncrRaceWeak(t *testing.T) {
	var bench *svcomp.Benchmark
	for i, b := range svcomp.All() {
		if b.Subcategory == "pthread" && b.Name == "incr_race_weak_safe" {
			bench = &svcomp.All()[i]
			break
		}
	}
	if bench == nil {
		t.Fatal("pthread/incr_race_weak_safe not in corpus")
	}
	for _, model := range []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO} {
		rep, err := Verify(bench.Program, Options{
			Model:    model,
			Unroll:   1,
			Timeout:  30 * time.Second,
			RG:       true,
			RGDomain: rg.DomainDBM,
		})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if rep.Verdict != UnboundedSafe || !rep.RGProved {
			t.Errorf("%s: want UnboundedSafe via rg, got %v (RGProved=%v)",
				model, rep.Verdict, rep.RGProved)
		}
		if rep.SolverStats.Decisions != 0 {
			t.Errorf("%s: backend ran (%d decisions) despite the unbounded proof",
				model, rep.SolverStats.Decisions)
		}
	}
}

// TestRGPrefilterPrecision pins the cheap pre-filter's contract: it may
// skip proof attempts (saving the fixpoint on pairs it deems hopeless) but
// must never skip a pair the full engine would have proved, under either
// domain. The facade must surface the skip on its Report.
func TestRGPrefilterPrecision(t *testing.T) {
	models := []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO}
	skipped, lost := 0, 0
	for _, b := range svcomp.All() {
		for _, model := range models {
			for _, domain := range []string{rg.DomainInterval, rg.DomainDBM} {
				full, err := rg.Prove(b.Program, rg.Options{Model: model, Domain: domain})
				if err != nil {
					t.Fatalf("%s@%s/%s: %v", b.Name, model, domain, err)
				}
				pre, err := rg.Prove(b.Program, rg.Options{Model: model, Domain: domain, Prefilter: true})
				if err != nil {
					t.Fatalf("%s@%s/%s (prefilter): %v", b.Name, model, domain, err)
				}
				if pre.SkippedPrefilter {
					skipped++
					if pre.Proved {
						t.Errorf("%s@%s/%s: skipped pair reported proved", b.Name, model, domain)
					}
					if full.Proved {
						lost++
						t.Errorf("%s@%s/%s: prefilter skipped a provable pair", b.Name, model, domain)
					}
				} else if full.Proved != pre.Proved {
					t.Errorf("%s@%s/%s: prefilter changed the verdict: full=%v pre=%v",
						b.Name, model, domain, full.Proved, pre.Proved)
				}
			}
		}
	}
	if skipped == 0 {
		t.Fatal("prefilter skipped nothing on the corpus; the fast path is dead")
	}
	t.Logf("prefilter skipped %d (pair,domain) attempts, lost %d proofs", skipped, lost)

	// Facade surface: a skipped pair's Report must carry the flag.
	for _, b := range svcomp.All() {
		rep, err := Verify(b.Program, Options{
			Model: memmodel.SC, Unroll: 1, Timeout: 30 * time.Second,
			RG: true, RGPrefilter: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if rep.RGSkippedPrefilter {
			return // surfaced; done
		}
	}
	t.Error("no corpus benchmark surfaced RGSkippedPrefilter through the facade")
}

// TestRGDifferential is the injection correctness and usefulness gate:
// across the corpus, all three models, fresh pipeline and incremental
// sweep,
//
//   - on pairs the engine proves, the plain pipeline must agree the
//     program is safe at every bound (the unbounded-safe short-circuit
//     only ever replaces Safe);
//   - on unproven pairs, the verdict with injected invariants must equal
//     the plain verdict at every bound (injection is equisatisfiable);
//   - injected invariants must not make search harder: summed over all
//     unproven solves, decisions+conflicts with -dataflow -rg must not
//     exceed the -dataflow-only baseline. (The comparison is aggregate,
//     not per-solve: added unit constraints can reshuffle VSIDS branch
//     order on an individual instance, but across the corpus they may
//     only prune.)
func TestRGDifferential(t *testing.T) {
	models := []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO}
	maxBound := 4
	if testing.Short() {
		maxBound = 2
	}
	var baseWork, rgWork uint64
	checks, provedPairs := 0, 0
	for _, b := range svcomp.All() {
		for _, model := range models {
			res, err := rg.Prove(b.Program, rg.Options{Model: model})
			if err != nil {
				t.Fatalf("%s@%s: rg: %v", b.Name, model, err)
			}
			bounds := incBounds(b.Program, maxBound)

			// Incremental sweep with injected ranges for unproven pairs;
			// proved pairs skip the sweep entirely (the harness does the
			// same), so the fresh plain run below is their cross-check.
			var sweep *incremental.Sweep
			if !res.Proved {
				sweep, err = incremental.New(b.Program, incremental.Options{
					Model:    model,
					Strategy: core.ZPRE,
					Timeout:  30 * time.Second,
					Dataflow: true,
					RGRanges: res.Ranges,
				})
				if err != nil {
					t.Fatalf("%s@%s: incremental setup: %v", b.Name, model, err)
				}
			} else {
				provedPairs++
			}

			for _, k := range bounds {
				base, err := Verify(b.Program, Options{
					Model:    model,
					Strategy: core.ZPRE,
					Unroll:   k,
					Timeout:  30 * time.Second,
					Dataflow: true,
				})
				if err != nil {
					t.Fatalf("%s@%s/k%d: baseline solve: %v", b.Name, model, k, err)
				}
				if base.Verdict == Unknown {
					t.Fatalf("%s@%s/k%d: baseline inconclusive", b.Name, model, k)
				}
				if res.Proved {
					if base.Verdict == Unsafe {
						t.Errorf("UNSOUND: %s@%s/k%d: rg proved but plain dataflow solve is Unsafe",
							b.Name, model, k)
					}
					checks++
					continue
				}
				withRG, err := Verify(b.Program, Options{
					Model:    model,
					Strategy: core.ZPRE,
					Unroll:   k,
					Timeout:  30 * time.Second,
					Dataflow: true,
					RG:       true,
					RGResult: res,
				})
				if err != nil {
					t.Fatalf("%s@%s/k%d: rg solve: %v", b.Name, model, k, err)
				}
				if withRG.Verdict == Unknown {
					t.Fatalf("%s@%s/k%d: rg solve inconclusive", b.Name, model, k)
				}
				if base.Verdict != withRG.Verdict {
					t.Errorf("%s@%s/k%d: dataflow=%v dataflow+rg=%v",
						b.Name, model, k, base.Verdict, withRG.Verdict)
				}
				baseWork += base.SolverStats.Decisions + base.SolverStats.Conflicts
				rgWork += withRG.SolverStats.Decisions + withRG.SolverStats.Conflicts

				br, err := sweep.Next()
				if err != nil {
					t.Fatalf("%s@%s/k%d: incremental rg: %v", b.Name, model, k, err)
				}
				if (base.Verdict == Unsafe) != (br.Verdict == incremental.Unsafe) ||
					br.Verdict == incremental.Unknown {
					t.Errorf("%s@%s/k%d: fresh=%v incremental+rg=%v",
						b.Name, model, k, base.Verdict, br.Verdict)
				}
				checks++
			}
		}
	}
	t.Logf("%d comparisons (%d pairs rg-proved); search work: baseline=%d rg=%d",
		checks, provedPairs, baseWork, rgWork)
	if checks < 100 {
		t.Fatalf("only %d corpus comparisons ran; corpus shrank?", checks)
	}
	if provedPairs == 0 {
		t.Fatal("rg proved nothing on the corpus")
	}
	if rgWork > baseWork {
		t.Errorf("injected invariants made search harder in aggregate: baseline=%d rg=%d",
			baseWork, rgWork)
	}
}
