package zpre

import (
	"testing"
	"time"

	"zpre/internal/memmodel"
	"zpre/internal/svcomp"
)

func TestParseProgramAndVerify(t *testing.T) {
	prog, err := ParseProgram("mini", `
shared x;
thread t1 { x = 1; }
thread t2 { x = 2; }
main { assert(x != 0); }
`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(prog, Options{Model: SC, Strategy: ZPRE})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Safe {
		t.Fatalf("x is written 1 or 2 by both threads; got %v", rep.Verdict)
	}
	if rep.EncodeStats.Events == 0 || rep.SolveTime < 0 {
		t.Fatal("report not populated")
	}
}

func TestVerdictStrings(t *testing.T) {
	if Safe.String() != "true" || Unsafe.String() != "false" || Unknown.String() != "unknown" {
		t.Fatal("verdict strings broken")
	}
}

func TestVerifyDefaultsUnrollAndWidth(t *testing.T) {
	prog, err := ParseProgram("defaults", `
shared x;
thread t {
    local c;
    while (c < 1) { x = x + 1; c = c + 1; }
}
main { assert(x <= 1); }
`)
	if err != nil {
		t.Fatal(err)
	}
	// Unroll defaults to 1, width to 8.
	rep, err := Verify(prog, Options{Strategy: Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Safe {
		t.Fatalf("got %v", rep.Verdict)
	}
}

func TestVerifyBudgetUnknown(t *testing.T) {
	var hard *svcomp.Benchmark
	for _, b := range svcomp.All() {
		if b.Name == "incr_lock_safe_5" {
			bb := b
			hard = &bb
		}
	}
	if hard == nil {
		t.Fatal("corpus missing incr_lock_safe_5")
	}
	rep, err := Verify(hard.Program, Options{
		Model:        memmodel.SC,
		Strategy:     Baseline,
		MaxConflicts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Unknown {
		t.Fatalf("1-conflict budget must give Unknown, got %v", rep.Verdict)
	}
}

func TestVerifyTimeout(t *testing.T) {
	var hard *svcomp.Benchmark
	for _, b := range svcomp.All() {
		if b.Name == "incr_lock_safe_6" {
			bb := b
			hard = &bb
		}
	}
	rep, err := Verify(hard.Program, Options{
		Model:    memmodel.SC,
		Strategy: Baseline,
		Timeout:  time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Unknown {
		t.Fatalf("nanosecond timeout must give Unknown, got %v", rep.Verdict)
	}
}

// TestStrategyInvariance: all three strategies agree on every lit program
// under every model (determinism of verdicts; the paper's Table 3 relies on
// consistent True/False counts).
func TestStrategyInvariance(t *testing.T) {
	for _, b := range svcomp.BySubcategory("lit") {
		for _, mm := range memmodel.All() {
			var verdicts []Verdict
			for _, strat := range []Options{
				{Model: mm, Strategy: Baseline},
				{Model: mm, Strategy: ZPREMinus, Seed: 1},
				{Model: mm, Strategy: ZPRE, Seed: 2},
			} {
				rep, err := Verify(b.Program, strat)
				if err != nil {
					t.Fatal(err)
				}
				verdicts = append(verdicts, rep.Verdict)
			}
			if verdicts[0] != verdicts[1] || verdicts[1] != verdicts[2] {
				t.Errorf("%s/%v: verdicts diverge: %v", b.Name, mm, verdicts)
			}
		}
	}
}

// TestSeedDeterminism: the same seed yields identical statistics.
func TestSeedDeterminism(t *testing.T) {
	var prog = svcomp.BySubcategory("lit")[0].Program
	run := func() uint64 {
		rep, err := Verify(prog, Options{Model: TSO, Strategy: ZPRE, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return rep.SolverStats.Decisions + rep.SolverStats.Conflicts<<32
	}
	if run() != run() {
		t.Fatal("same seed must reproduce the identical search")
	}
}

func TestFindMinimalBound(t *testing.T) {
	// fib_bench_unsafe_2 needs bound >= 2 for the violation.
	var b *svcomp.Benchmark
	for _, x := range svcomp.All() {
		if x.Name == "fib_bench_unsafe_2" {
			xx := x
			b = &xx
		}
	}
	k, rep, err := FindMinimalBound(b.Program, Options{Model: SC, Strategy: ZPRE, Seed: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 || rep.Verdict != Unsafe {
		t.Fatalf("minimal bound = %d (verdict %v), want 2/unsafe", k, rep.Verdict)
	}
	// A safe program returns 0.
	for _, x := range svcomp.All() {
		if x.Name == "fib_bench_safe_1" {
			xx := x
			b = &xx
		}
	}
	k, rep, err = FindMinimalBound(b.Program, Options{Model: SC, Strategy: ZPRE}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if k != 0 || rep.Verdict != Safe {
		t.Fatalf("safe program: bound %d verdict %v", k, rep.Verdict)
	}
	// Loop-free programs short-circuit after bound 1.
	for _, x := range svcomp.All() {
		if x.Name == "fig2" {
			xx := x
			b = &xx
		}
	}
	k, _, err = FindMinimalBound(b.Program, Options{Model: TSO, Strategy: ZPRE}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("fig2/TSO minimal bound = %d, want 1", k)
	}
}

func TestVerifyEach(t *testing.T) {
	// Three assertions with distinct verdicts: thread-local always-true,
	// a racy one (violable), and a post invariant (safe).
	prog, err := ParseProgram("multi", `
shared x;
shared m;
thread t1 {
    lock(m); x = x + 1; unlock(m);
    assert(x >= 0 || x < 0);       // trivially true
}
thread t2 {
    x = x + 1;                     // unlocked: races with t1
}
main {
    assert(x == 2);                // violable: the lost update
    assert(x >= 1);                // safe: both threads write >= 1
}
`)
	if err != nil {
		t.Fatal(err)
	}
	reps, err := VerifyEach(prog, Options{Model: SC, Strategy: ZPRE, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("got %d assertion reports", len(reps))
	}
	if reps[0].Verdict != Safe || reps[0].Thread != 1 {
		t.Errorf("assert 0: %+v", reps[0])
	}
	if reps[1].Verdict != Unsafe || reps[1].Thread != 0 {
		t.Errorf("assert 1: %+v (x==2 must be violable)", reps[1])
	}
	if reps[2].Verdict != Safe || reps[2].Thread != 0 {
		t.Errorf("assert 2: %+v (x>=1 must hold)", reps[2])
	}

	// Consistency with the combined check: the program is unsafe overall
	// iff some assertion is.
	rep, err := Verify(prog, Options{Model: SC, Strategy: ZPRE, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	anyUnsafe := false
	for _, r := range reps {
		if r.Verdict == Unsafe {
			anyUnsafe = true
		}
	}
	if (rep.Verdict == Unsafe) != anyUnsafe {
		t.Fatalf("combined verdict %v inconsistent with per-assert %v", rep.Verdict, reps)
	}
}

func TestVerifyEachAgreesWithVerifyAcrossCorpus(t *testing.T) {
	// For single-assertion programs the two entry points must agree.
	for _, b := range svcomp.BySubcategory("lit") {
		for _, mm := range memmodel.All() {
			reps, err := VerifyEach(b.Program, Options{Model: mm, Strategy: ZPRE, Seed: 4})
			if err != nil {
				t.Fatal(err)
			}
			any := false
			for _, r := range reps {
				if r.Verdict == Unsafe {
					any = true
				}
			}
			rep, err := Verify(b.Program, Options{Model: mm, Strategy: ZPRE, Seed: 4})
			if err != nil {
				t.Fatal(err)
			}
			if (rep.Verdict == Unsafe) != any {
				t.Errorf("%s/%v: Verify=%v but VerifyEach unsafe=%v", b.Name, mm, rep.Verdict, any)
			}
		}
	}
}

func TestVerifyWithProof(t *testing.T) {
	var fig2 *svcomp.Benchmark
	for _, b := range svcomp.All() {
		if b.Name == "fig2" {
			bb := b
			fig2 = &bb
		}
	}
	// Safe case: proof recorded and checked.
	rep, err := VerifyWithProof(fig2.Program, Options{Model: SC, Strategy: ZPRE, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Safe || !rep.ProofChecked {
		t.Fatalf("verdict %v, proofChecked %v", rep.Verdict, rep.ProofChecked)
	}
	// Unsafe case: the witness schedule is validated instead.
	rep, err = VerifyWithProof(fig2.Program, Options{Model: TSO, Strategy: ZPRE, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Unsafe || !rep.ProofChecked {
		t.Fatalf("verdict %v, proofChecked %v", rep.Verdict, rep.ProofChecked)
	}
}

// TestCheckedVerificationAcrossCorpus runs the fully checked pipeline (proof
// checking for safe verdicts, witness validation for unsafe ones) across a
// slice of the corpus under every memory model.
func TestCheckedVerificationAcrossCorpus(t *testing.T) {
	subs := []string{"lit", "nondet", "divine", "driver-races", "ldv-races"}
	if testing.Short() {
		subs = []string{"lit"}
	}
	checked := 0
	for _, sub := range subs {
		for _, b := range svcomp.BySubcategory(sub) {
			for _, mm := range memmodel.All() {
				rep, err := VerifyWithProof(b.Program, Options{
					Model: mm, Strategy: ZPRE, Seed: 9, Unroll: b.MinBound,
				})
				if err != nil {
					t.Fatalf("%s/%v: %v", b.Name, mm, err)
				}
				if rep.Verdict == Unknown {
					t.Fatalf("%s/%v: unknown without budget", b.Name, mm)
				}
				if !rep.ProofChecked {
					t.Fatalf("%s/%v: verdict %v not checked", b.Name, mm, rep.Verdict)
				}
				checked++
			}
		}
	}
	t.Logf("checked verdicts: %d", checked)
}
