// Quickstart: verify the paper's Figure 2 program under all three memory
// models with all three decision strategies, printing verdicts and search
// statistics. This is the smallest end-to-end tour of the API:
//
//	parse → Verify(model, strategy, bound) → verdict + stats
//
// Expected output: SAFE under SC (the EOG cycle of §3.3 rules the violation
// out), UNSAFE under TSO and PSO (the relaxed W→R order admits the stale
// reads), with ZPRE using fewer decisions and conflicts than the baseline.
package main

import (
	"fmt"
	"log"

	"zpre"
	"zpre/internal/core"
	"zpre/internal/memmodel"
)

const src = `
// Figure 2 of the paper.
shared x; shared y; shared m; shared n;

thread t1 {
    x = y + 1;
    m = y;
}

thread t2 {
    y = x + 1;
    n = x;
}

main {
    assert(!(m == 0 && n == 0));
}
`

func main() {
	prog, err := zpre.ParseProgram("fig2", src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 2 program, all models × all strategies:")
	fmt.Printf("%-6s %-10s %-8s %10s %12s %10s %10s\n",
		"model", "strategy", "verdict", "decisions", "propagations", "conflicts", "solve")
	for _, mm := range memmodel.All() {
		for _, strat := range []core.Strategy{zpre.Baseline, zpre.ZPREMinus, zpre.ZPRE} {
			rep, err := zpre.Verify(prog, zpre.Options{
				Model:    mm,
				Strategy: strat,
				Unroll:   1,
				Seed:     42,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6s %-10s %-8s %10d %12d %10d %10s\n",
				mm, strat, rep.Verdict,
				rep.SolverStats.Decisions,
				rep.SolverStats.Propagations,
				rep.SolverStats.Conflicts,
				rep.SolveTime.Round(1000))
		}
	}
	fmt.Println()
	fmt.Println("Reading the table: SC is SAFE (verdict true) because every execution")
	fmt.Println("with m==0 and n==0 closes a cycle in the event order graph; TSO and PSO")
	fmt.Println("relax the write-to-read program order, so the stale-read execution is")
	fmt.Println("valid and the assertion is violated (verdict false).")
}
