// The same counter with both increments inside a critical section on `m`:
// every cross-thread pair of accesses to `counter` holds the common mutex,
// so the static analysis reports it race-free (exit status 0) and the
// -prune encoder drops the interference candidates the lock rules out.
shared counter;
shared m;

thread t1 {
    lock(m);
    counter = counter + 1;
    unlock(m);
}

thread t2 {
    lock(m);
    counter = counter + 1;
    unlock(m);
}

main {
    assert(counter == 2);
}
