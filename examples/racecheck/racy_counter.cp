// A classic lost-update race: two threads increment the shared counter with
// no synchronisation. `racecheck racy_counter.cp` flags `counter` as
// potentially racy (exit status 1); the lock-protected variant next to this
// file is reported race-free.
shared counter;

thread t1 {
    counter = counter + 1;
}

thread t2 {
    counter = counter + 1;
}

main {
    assert(counter == 2);
}
