// Peterson: verify Peterson's mutual-exclusion algorithm under SC, TSO and
// PSO, demonstrate that weak memory breaks it, and — for a broken model —
// extract a concrete violating interleaving from the SMT model by reading
// the interference edges (rf/ws) back into the event order graph and
// linearising it (a topological order of a valid EOG is an interleaving,
// §3.3 of the paper).
package main

import (
	"fmt"
	"log"

	"zpre/internal/core"
	"zpre/internal/cprog"
	"zpre/internal/encode"
	"zpre/internal/memmodel"
	"zpre/internal/sat"
	"zpre/internal/smt"
	"zpre/internal/svcomp"
	"zpre/internal/witness"
)

func main() {
	var plain, fenced *cprog.Program
	for _, b := range svcomp.Lit() {
		switch b.Name {
		case "peterson":
			plain = b.Program
		case "peterson_fenced":
			fenced = b.Program
		}
	}
	if plain == nil || fenced == nil {
		log.Fatal("peterson benchmarks missing from corpus")
	}

	fmt.Println("Peterson's algorithm (cs == 2 asserts mutual exclusion held):")
	for _, tc := range []struct {
		name string
		prog *cprog.Program
	}{{"peterson", plain}, {"peterson+fences", fenced}} {
		for _, mm := range memmodel.All() {
			vc, status := solve(tc.prog, mm)
			verdict := "SAFE  (mutual exclusion holds)"
			if status == sat.Sat {
				verdict = "UNSAFE (both threads in the critical section)"
			}
			fmt.Printf("  %-16s %-4s %s\n", tc.name, mm, verdict)
			if status == sat.Sat && mm == memmodel.TSO && tc.name == "peterson" {
				printWitness(vc)
			}
		}
	}
}

func solve(p *cprog.Program, mm memmodel.Model) (*encode.VC, sat.Status) {
	unrolled := cprog.Unroll(p, 1, cprog.UnwindAssume)
	vc, err := encode.Program(unrolled, encode.Options{Model: mm})
	if err != nil {
		log.Fatal(err)
	}
	infos := core.Classify(vc.Builder.NamedVars())
	dec := core.NewDecider(core.ZPRE, infos, core.Config{Seed: 11})
	res, err := vc.Builder.Solve(smt.Options{Decider: dec})
	if err != nil {
		log.Fatal(err)
	}
	return vc, res.Status
}

// printWitness linearises the satisfying execution: program order plus the
// model's interference edges form an acyclic EOG whose topological order is
// a concrete interleaving.
func printWitness(vc *encode.VC) {
	steps, err := witness.Extract(vc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("    witness interleaving (thread, access, value):")
	fmt.Print(witness.Format(steps, "      "))
}
