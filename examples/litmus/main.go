// Litmus: run the classic weak-memory litmus tests (SB, MP, LB, 2+2W, S,
// IRIW and their fenced variants) under SC, TSO and PSO, printing the
// verdict matrix. The matrix is the fingerprint of a memory model: which
// relaxed outcomes it admits.
//
//	SB     needs W→R reordering      → forbidden SC, allowed TSO/PSO
//	MP     needs W→W (or R→R)        → forbidden SC/TSO, allowed PSO
//	LB     needs R→W                 → forbidden everywhere here
//	2+2W   needs W→W                 → forbidden SC/TSO, allowed PSO
//	S      needs W→W                 → forbidden SC/TSO, allowed PSO
//	IRIW   needs R→R or non-MCA      → forbidden everywhere here
//
// "Allowed" shows up as verdict false (the assertion over the forbidden
// outcome is violated).
package main

import (
	"fmt"
	"log"
	"strings"

	"zpre"
	"zpre/internal/memmodel"
	"zpre/internal/svcomp"
)

func main() {
	picks := []string{
		"sb_1", "sb_fenced_1",
		"mp_1", "mp_fenced_1",
		"lb_1",
		"2plus2w_1", "2plus2w_fenced_1",
		"s_1",
		"iriw_1",
	}
	byName := map[string]svcomp.Benchmark{}
	for _, b := range svcomp.BySubcategory("wmm") {
		byName[b.Name] = b
	}

	fmt.Println("Litmus verdicts (true = outcome forbidden / program safe):")
	fmt.Printf("%-18s %8s %8s %8s\n", "test", "SC", "TSO", "PSO")
	fmt.Println(strings.Repeat("-", 46))
	for _, name := range picks {
		b, ok := byName[name]
		if !ok {
			log.Fatalf("missing litmus benchmark %q", name)
		}
		fmt.Printf("%-18s", name)
		for _, mm := range memmodel.All() {
			rep, err := zpre.Verify(b.Program, zpre.Options{
				Model:    mm,
				Strategy: zpre.ZPRE,
				Unroll:   1,
				Seed:     7,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %8s", rep.Verdict)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Pure litmus cores are propagation-trivial (zero decisions); the")
	fmt.Println("data-carrying variants (nondeterministic written values) give the")
	fmt.Println("search real work — watch ZPRE's advantage on them (TSO):")
	fmt.Printf("%-12s %12s %12s %12s %12s\n", "instance", "base decs", "zpre decs", "base confl", "zpre confl")
	for k := 1; k <= 6; k++ {
		b, ok := byName[fmt.Sprintf("sb_data_%d", k)]
		if !ok {
			continue
		}
		var decs, confl [2]uint64
		for i, strat := range []zpre.Options{
			{Model: memmodel.TSO, Strategy: zpre.Baseline, Unroll: 1, Width: 16},
			{Model: memmodel.TSO, Strategy: zpre.ZPRE, Unroll: 1, Seed: 7, Width: 16},
		} {
			rep, err := zpre.Verify(b.Program, strat)
			if err != nil {
				log.Fatal(err)
			}
			decs[i] = rep.SolverStats.Decisions
			confl[i] = rep.SolverStats.Conflicts
		}
		fmt.Printf("sb_data_%-4d %12d %12d %12d %12d\n", k, decs[0], decs[1], confl[0], confl[1])
	}
}
