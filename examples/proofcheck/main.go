// Proofcheck: demonstrate fully checked verification — safe verdicts come
// with an independently validated refutation proof (reverse unit
// propagation for learnt clauses, EOG-cycle replay for theory lemmas), and
// unsafe verdicts come with a semantically validated counterexample
// schedule. The solver never vouches for itself.
package main

import (
	"fmt"
	"log"

	"zpre"
	"zpre/internal/core"
	"zpre/internal/cprog"
	"zpre/internal/encode"
	"zpre/internal/memmodel"
	"zpre/internal/sat"
	"zpre/internal/smt"
	"zpre/internal/svcomp"
	"zpre/internal/witness"
)

func main() {
	var fig2, peterson *cprog.Program
	for _, b := range svcomp.Lit() {
		switch b.Name {
		case "fig2":
			fig2 = b.Program
		case "peterson_fenced":
			peterson = b.Program
		}
	}

	fmt.Println("Checked verification (the facade view):")
	for _, tc := range []struct {
		name string
		prog *cprog.Program
		mm   memmodel.Model
	}{
		{"fig2 under SC (safe)", fig2, memmodel.SC},
		{"fig2 under TSO (unsafe)", fig2, memmodel.TSO},
		{"peterson+fences under PSO (safe)", peterson, memmodel.PSO},
	} {
		rep, err := zpre.VerifyWithProof(tc.prog, zpre.Options{
			Model: tc.mm, Strategy: zpre.ZPRE, Seed: 1,
		})
		if err != nil {
			log.Fatalf("%s: %v", tc.name, err)
		}
		kind := "refutation proof (RUP + theory lemmas)"
		if rep.Verdict == zpre.Unsafe {
			kind = "witness schedule (read-from consistency)"
		}
		fmt.Printf("  %-34s verdict=%-7v checked via %s\n", tc.name, rep.Verdict, kind)
	}

	// The low-level view: inspect the proof trace itself.
	fmt.Println()
	fmt.Println("Anatomy of one refutation (fig2 under SC):")
	vc, err := encode.Program(fig2, encode.Options{Model: memmodel.SC, WithProof: true})
	if err != nil {
		log.Fatal(err)
	}
	dec := core.NewDecider(core.ZPRE, core.Classify(vc.Builder.NamedVars()), core.Config{Seed: 1})
	res, err := vc.Builder.Solve(smt.Options{Decider: dec})
	if err != nil {
		log.Fatal(err)
	}
	if res.Status != sat.Unsat {
		log.Fatalf("expected unsat, got %v", res.Status)
	}
	inputs, learnts, lemmas, deletions := vc.Proof.Stats()
	fmt.Printf("  trace: %d input clauses, %d learnt clauses, %d theory lemmas, %d deletions\n",
		inputs, learnts, lemmas, deletions)
	if err := vc.Builder.CheckProof(vc.Proof); err != nil {
		log.Fatalf("  checker rejected the proof: %v", err)
	}
	fmt.Println("  independent checker: proof OK (ends in the empty clause)")

	// And one witness, validated by hand.
	fmt.Println()
	fmt.Println("Anatomy of one counterexample (fig2 under TSO):")
	vc2, err := encode.Program(fig2, encode.Options{Model: memmodel.TSO})
	if err != nil {
		log.Fatal(err)
	}
	dec2 := core.NewDecider(core.ZPRE, core.Classify(vc2.Builder.NamedVars()), core.Config{Seed: 1})
	if _, err := vc2.Builder.Solve(smt.Options{Decider: dec2}); err != nil {
		log.Fatal(err)
	}
	steps, err := witness.Extract(vc2)
	if err != nil {
		log.Fatal(err)
	}
	if err := witness.Validate(steps); err != nil {
		log.Fatalf("witness invalid: %v", err)
	}
	fmt.Printf("  schedule of %d steps, every read consistent with its latest write:\n", len(steps))
	fmt.Print(witness.Format(steps, "    "))
}
