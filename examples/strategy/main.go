// Strategy: build custom decision strategies through the solver's Decider
// hook and compare them on one instance. This demonstrates the extension
// seam the paper's technique lives behind: anything that can rank variables
// can steer DPLL(T).
//
// Strategies compared:
//
//	baseline   — VSIDS only (the paper's "Z3")
//	zpre-      — interference variables first, unranked (HEURISTIC 1)
//	zpre       — the full paper order (RF≺WS, external≺internal, #write)
//	ws-first   — a deliberately inverted order (WS before RF): the paper
//	             argues RF dominates SSA values while WS does not, so this
//	             should do worse than zpre
//	ssa-only   — anti-strategy: decide SSA variables first; expect the
//	             worst search, as §3.4 predicts (bit-level thrashing)
package main

import (
	"fmt"
	"log"
	"sort"

	"zpre/internal/core"
	"zpre/internal/cprog"
	"zpre/internal/encode"
	"zpre/internal/memmodel"
	"zpre/internal/sat"
	"zpre/internal/smt"
	"zpre/internal/svcomp"
)

// listDecider decides the given variables in order (true polarity), then
// falls back to VSIDS. It implements sat.Decider.
type listDecider struct {
	order  []sat.Var
	cursor int
}

func (d *listDecider) Next(value func(sat.Var) sat.LBool) sat.Lit {
	for d.cursor < len(d.order) {
		v := d.order[d.cursor]
		if value(v) == sat.LUndef {
			return sat.PosLit(v)
		}
		d.cursor++
	}
	return sat.LitUndef
}

func (d *listDecider) OnBacktrack() { d.cursor = 0 }

func main() {
	// A mid-size instance: the 4-pair store-buffering litmus under TSO.
	var prog *cprog.Program
	for _, b := range svcomp.BySubcategory("wmm") {
		if b.Name == "sb_4" {
			prog = b.Program
		}
	}
	if prog == nil {
		log.Fatal("sb_4 missing")
	}

	type strategy struct {
		name string
		mk   func(vc *encode.VC) sat.Decider
	}
	strategies := []strategy{
		{"baseline", func(*encode.VC) sat.Decider { return nil }},
		{"zpre-", func(vc *encode.VC) sat.Decider {
			return core.NewDecider(core.ZPREMinus, core.Classify(vc.Builder.NamedVars()), core.Config{Seed: 3})
		}},
		{"zpre", func(vc *encode.VC) sat.Decider {
			return core.NewDecider(core.ZPRE, core.Classify(vc.Builder.NamedVars()), core.Config{Seed: 3})
		}},
		{"ws-first", func(vc *encode.VC) sat.Decider {
			return &listDecider{order: pickByClass(vc, core.ClassWS, core.ClassRFExternal, core.ClassRFInternal)}
		}},
		{"ssa-only", func(vc *encode.VC) sat.Decider {
			return &listDecider{order: pickByClass(vc, core.ClassSSA)}
		}},
	}

	fmt.Println("Custom decision strategies on wmm/sb_4 under TSO:")
	fmt.Printf("%-10s %-8s %12s %14s %12s %10s\n",
		"strategy", "status", "decisions", "propagations", "conflicts", "solve")
	for _, s := range strategies {
		unrolled := cprog.Unroll(prog, 1, cprog.UnwindAssume)
		vc, err := encode.Program(unrolled, encode.Options{Model: memmodel.TSO})
		if err != nil {
			log.Fatal(err)
		}
		res, err := vc.Builder.Solve(smt.Options{Decider: s.mk(vc)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-8s %12d %14d %12d %10s\n",
			s.name, res.Status, res.Stats.Decisions, res.Stats.Propagations,
			res.Stats.Conflicts, res.Elapsed.Round(1000))
	}
	fmt.Println()
	fmt.Println("The interference-guided orders (zpre-, zpre) should search less than")
	fmt.Println("the baseline; the inverted and anti-strategies show that it is the")
	fmt.Println("specific ranking, not merely having *some* fixed order, that helps.")
}

// pickByClass lists the variables of the given classes, in class order, each
// class sorted by variable index.
func pickByClass(vc *encode.VC, classes ...core.Class) []sat.Var {
	infos := core.Classify(vc.Builder.NamedVars())
	var out []sat.Var
	for _, cl := range classes {
		var vs []sat.Var
		for _, vi := range infos {
			if vi.Class == cl {
				vs = append(vs, vi.Var)
			}
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		out = append(out, vs...)
	}
	return out
}
