package zpre

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"zpre/internal/cprog"
	"zpre/internal/interp"
	"zpre/internal/memmodel"
)

// randProgram generates a small random concurrent program. No locks or
// atomic sections (the interpreter's WMM lock semantics are intentionally
// stronger; see internal/interp); those constructs get their own directed
// tests under SC.
func randProgram(rng *rand.Rand, id int) *cprog.Program {
	nShared := 2 + rng.Intn(2)
	var shared []cprog.SharedDecl
	var names []string
	for i := 0; i < nShared; i++ {
		n := fmt.Sprintf("g%d", i)
		names = append(names, n)
		shared = append(shared, cprog.SharedDecl{Name: n, Init: int64(rng.Intn(2))})
	}
	randVar := func() string { return names[rng.Intn(len(names))] }
	var randExpr func(depth int) cprog.Expr
	randExpr = func(depth int) cprog.Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				return cprog.C(int64(rng.Intn(4)))
			}
			return cprog.V(randVar())
		}
		ops := []cprog.Op{cprog.OpAdd, cprog.OpSub, cprog.OpEq, cprog.OpLt, cprog.OpBitAnd, cprog.OpBitXor}
		return cprog.BinOp{
			Op: ops[rng.Intn(len(ops))],
			L:  randExpr(depth - 1),
			R:  randExpr(depth - 1),
		}
	}
	randStmt := func() cprog.Stmt {
		switch rng.Intn(8) {
		case 0:
			return cprog.Assume{Cond: cprog.BinOp{Op: cprog.OpLe, L: randExpr(1), R: cprog.C(int64(rng.Intn(7)))}}
		case 1:
			return cprog.Assert{Cond: cprog.BinOp{Op: cprog.OpNe, L: randExpr(1), R: cprog.C(int64(3 + rng.Intn(4)))}}
		case 2:
			return cprog.If{
				Cond: randExpr(1),
				Then: []cprog.Stmt{cprog.Set(randVar(), randExpr(1))},
				Else: []cprog.Stmt{cprog.Set(randVar(), randExpr(1))},
			}
		case 3:
			return cprog.Havoc{Name: randVar()}
		case 4:
			return cprog.Fence{}
		default:
			return cprog.Set(randVar(), randExpr(2))
		}
	}
	p := &cprog.Program{Name: fmt.Sprintf("rand%d", id), Shared: shared}
	nThreads := 2
	for t := 0; t < nThreads; t++ {
		th := &cprog.Thread{Name: fmt.Sprintf("t%d", t+1)}
		n := 2 + rng.Intn(3)
		for i := 0; i < n; i++ {
			th.Body = append(th.Body, randStmt())
		}
		p.Threads = append(p.Threads, th)
	}
	p.Post = []cprog.Stmt{
		cprog.Assert{Cond: cprog.BinOp{Op: cprog.OpNe,
			L: cprog.Add(cprog.V(names[0]), cprog.V(names[1])),
			R: cprog.C(int64(rng.Intn(8)))}},
	}
	return p
}

func TestDifferentialRandomPrograms(t *testing.T) {
	const width = 3
	rng := rand.New(rand.NewSource(20220212))
	models := []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO}
	checked := 0
	for i := 0; i < 60; i++ {
		p := randProgram(rng, i)
		for _, mm := range models {
			want, err := interp.Run(p, 1, interp.Options{Model: mm, Width: width, MaxStates: 1 << 21})
			if errors.Is(err, interp.ErrStateExplosion) {
				continue
			}
			if err != nil {
				t.Fatalf("%s/%v: interp error: %v", p.Name, mm, err)
			}
			for _, strat := range []struct {
				name string
				s    Options
			}{
				{"baseline", Options{Model: mm, Strategy: Baseline, Width: width}},
				{"zpre-", Options{Model: mm, Strategy: ZPREMinus, Width: width, Seed: int64(i)}},
				{"zpre", Options{Model: mm, Strategy: ZPRE, Width: width, Seed: int64(i)}},
			} {
				rep, err := Verify(p, strat.s)
				if err != nil {
					t.Fatalf("%s/%v/%s: verify error: %v", p.Name, mm, strat.name, err)
				}
				got := rep.Verdict == Unsafe
				if got != (want == interp.Unsafe) {
					t.Errorf("%s/%v/%s: SMT says unsafe=%v, explicit-state says unsafe=%v\nprogram:\n%s",
						p.Name, mm, strat.name, got, want == interp.Unsafe, cprog.Format(p))
				}
				checked++
			}
		}
	}
	if checked < 100 {
		t.Fatalf("too few differential checks ran: %d", checked)
	}
	t.Logf("differential checks: %d", checked)
}
