package zpre_test

import (
	"fmt"
	"log"

	"zpre"
)

// The paper's Figure 2 program: safe under sequential consistency, unsafe
// under TSO where the write-to-read program order is relaxed.
const fig2Src = `
shared x; shared y; shared m; shared n;
thread t1 { x = y + 1; m = y; }
thread t2 { y = x + 1; n = x; }
main { assert(!(m == 0 && n == 0)); }
`

func ExampleVerify() {
	prog, err := zpre.ParseProgram("fig2", fig2Src)
	if err != nil {
		log.Fatal(err)
	}
	for _, mm := range []struct {
		name  string
		model zpre.Options
	}{
		{"SC", zpre.Options{Model: zpre.SC, Strategy: zpre.ZPRE}},
		{"TSO", zpre.Options{Model: zpre.TSO, Strategy: zpre.ZPRE}},
	} {
		rep, err := zpre.Verify(prog, mm.model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s\n", mm.name, rep.Verdict)
	}
	// Output:
	// SC: true
	// TSO: false
}

func ExampleVerifyEach() {
	prog, err := zpre.ParseProgram("two-props", `
shared x;
thread t1 { x = x + 1; }
thread t2 { x = x + 1; }
main {
    assert(x == 2);  // violable: the unlocked increments can lose an update
    assert(x >= 1);  // holds: both threads write at least 1
}
`)
	if err != nil {
		log.Fatal(err)
	}
	reps, err := zpre.VerifyEach(prog, zpre.Options{Model: zpre.SC, Strategy: zpre.ZPRE})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reps {
		fmt.Printf("assertion %d: %s\n", r.Index, r.Verdict)
	}
	// Output:
	// assertion 0: false
	// assertion 1: true
}

func ExampleVerifyWithProof() {
	prog, err := zpre.ParseProgram("fig2", fig2Src)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := zpre.VerifyWithProof(prog, zpre.Options{Model: zpre.SC, Strategy: zpre.ZPRE})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict %s, independently checked: %v\n", rep.Verdict, rep.ProofChecked)
	// Output:
	// verdict true, independently checked: true
}

func ExampleFindMinimalBound() {
	prog, err := zpre.ParseProgram("counter", `
shared x;
thread t {
    local c;
    while (c < 3) { x = x + 1; c = c + 1; }
}
main { assert(x != 3); }
`)
	if err != nil {
		log.Fatal(err)
	}
	k, rep, err := zpre.FindMinimalBound(prog, zpre.Options{Model: zpre.SC, Strategy: zpre.ZPRE}, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("violation first reachable at unroll bound %d (verdict %s)\n", k, rep.Verdict)
	// Output:
	// violation first reachable at unroll bound 3 (verdict false)
}
