package zpre

import (
	"errors"
	"testing"
	"time"

	"zpre/internal/cprog"
	"zpre/internal/interp"
	"zpre/internal/memmodel"
)

// FuzzDataflowVsPlain decodes random byte streams into small loop-bearing
// concurrent programs and requires the value-flow-simplified encoding to
// agree with the plain one at bounds 1 and 2, under a byte-chosen memory
// model — with the explicit-state interpreter as a third, independent
// oracle where its state space stays tractable. The dataflow pass claims
// to be equisatisfiable, so any divergence is a soundness bug in the
// simplifier, the interval analysis, the value-prune oracle or the fixed
// happens-before emission.
func FuzzDataflowVsPlain(f *testing.F) {
	f.Add([]byte("\x00\x00\x20\x08\x40\x07\x41\x03\x00"))
	f.Add([]byte("\x01\x07\x01\x04\x20\x03\x60\x00\x80\x05\x00"))
	f.Add([]byte("\x02\x0f\x81\x06\x20\x04\x40\x07\xc1\x02\x00\x01\x20"))
	f.Add([]byte("\x00\x39\x42\x07\x01\x00\x02\x40\x03\x80"))
	f.Add([]byte("\x01\x06\x1f\x07\xe1\x02\x21\x03\x00\x40"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		model := []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO}[int(data[0])%3]
		p := decodeFuzzProgram(data[1:])
		if err := p.Validate(); err != nil {
			t.Skipf("decoder produced invalid program: %v", err)
		}
		for k := 1; k <= 2; k++ {
			plain, err := Verify(p, Options{
				Model:   model,
				Unroll:  k,
				Width:   3,
				Timeout: 20 * time.Second,
			})
			if err != nil {
				t.Fatalf("plain k%d: %v\n%s", k, err, cprog.Format(p))
			}
			df, err := Verify(p, Options{
				Model:    model,
				Unroll:   k,
				Width:    3,
				Timeout:  20 * time.Second,
				Dataflow: true,
			})
			if err != nil {
				t.Fatalf("dataflow k%d: %v\n%s", k, err, cprog.Format(p))
			}
			if plain.Verdict == Unknown || df.Verdict == Unknown {
				t.Skipf("inconclusive at k%d (plain=%v dataflow=%v)", k, plain.Verdict, df.Verdict)
			}
			if plain.Verdict != df.Verdict {
				t.Fatalf("k%d@%s: plain=%v dataflow=%v\n%s",
					k, model, plain.Verdict, df.Verdict, cprog.Format(p))
			}
			ores, err := interp.Run(p, k, interp.Options{
				Model:     model,
				Width:     3,
				MaxStates: 1 << 20,
			})
			if errors.Is(err, interp.ErrStateExplosion) {
				continue
			}
			if err != nil {
				t.Fatalf("interp k%d: %v\n%s", k, err, cprog.Format(p))
			}
			oracle := Safe
			if ores == interp.Unsafe {
				oracle = Unsafe
			}
			if df.Verdict != oracle {
				t.Fatalf("k%d@%s: dataflow=%v oracle=%v\n%s",
					k, model, df.Verdict, oracle, cprog.Format(p))
			}
		}
	})
}
