#!/usr/bin/env bash
# server_smoke.sh — end-to-end crash-safety smoke for zpred.
#
# Drives the real binary over real HTTP: submits a safe and an unsafe
# program, kill -9s the server mid-queue, restarts it over the same journal
# and asserts the replay completes both jobs with the correct verdicts.
# Then re-runs the service with fault injection armed at the server seams
# and checks it degrades (503 on the injected enqueue failure) instead of
# dying. Exits non-zero on any violated assertion.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'kill -9 "${pid:-}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/zpred" ./cmd/zpred

addr=127.0.0.1:9478
journal="$workdir/journal.jsonl"
cache="$workdir/cache"

safe_body='{"name":"fig2-sc","source":"shared x; shared y; shared m; shared n; thread t1 { x = y + 1; m = y; } thread t2 { y = x + 1; n = x; } main { assert(!(m == 0 && n == 0)); }","model":"sc"}'
unsafe_body='{"name":"fig2-tso","source":"shared x; shared y; shared m; shared n; thread t1 { x = y + 1; m = y; } thread t2 { y = x + 1; n = x; } main { assert(!(m == 0 && n == 0)); }","model":"tso"}'

wait_ready() {
  for _ in $(seq 200); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.05
  done
  echo "server never became ready" >&2
  return 1
}

job_id() {
  python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])'
}

wait_verdict() { # id want
  local id=$1 want=$2 verdict state
  for _ in $(seq 600); do
    state=$(curl -fsS "http://$addr/jobs/$id" | python3 -c 'import json,sys; j=json.load(sys.stdin); print(j["state"], (j.get("result") or {}).get("verdict",""))')
    read -r st verdict <<<"$state"
    if [ "$st" = done ]; then
      if [ "$verdict" != "$want" ]; then
        echo "job $id: verdict $verdict, want $want" >&2
        return 1
      fi
      return 0
    fi
    sleep 0.05
  done
  echo "job $id never finished" >&2
  return 1
}

echo "== phase 1: accept jobs, then kill -9 mid-queue =="
# A stall fault makes every solve hang, guaranteeing the jobs are still
# in-flight when the SIGKILL lands: the journal, not luck, must save them.
"$workdir/zpred" -addr "$addr" -journal "$journal" -cache-dir "$cache" \
  -workers 2 -quiet -inject 'stall::1:600s' &
pid=$!
wait_ready

id_safe=$(curl -fsS -X POST "http://$addr/jobs" -d "$safe_body" | job_id)
id_unsafe=$(curl -fsS -X POST "http://$addr/jobs" -d "$unsafe_body" | job_id)
echo "accepted: $id_safe $id_unsafe"

kill -9 "$pid"
wait "$pid" 2>/dev/null || true

echo "== phase 2: restart replays the journal and finishes both jobs =="
"$workdir/zpred" -addr "$addr" -journal "$journal" -cache-dir "$cache" -workers 2 -quiet &
pid=$!
wait_ready
wait_verdict "$id_safe" true
wait_verdict "$id_unsafe" false
# The results must be marked as journal replays.
curl -fsS "http://$addr/jobs/$id_safe" | python3 -c 'import json,sys
j = json.load(sys.stdin)
assert j["result"].get("replayed"), f"job not marked replayed: {j}"'
curl -fsS "http://$addr/metrics" | grep -q 'jobs_replayed'
kill "$pid"
wait "$pid" 2>/dev/null || true

echo "== phase 3: fault injection degrades, never kills =="
"$workdir/zpred" -addr "$addr" -journal "$journal" -cache-dir "$cache" -workers 2 -quiet \
  -inject 'enqueue::1' -inject 'cache-get::1' -inject 'cancel::1:5ms' &
pid=$!
wait_ready
# First submission hits the injected enqueue failure: 503, not a crash.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/jobs" -d "$safe_body")
if [ "$code" != 503 ]; then
  echo "injected enqueue failure answered $code, want 503" >&2
  exit 1
fi
# The service keeps accepting afterwards; the injected cache corruption on
# the repeat submission forces a (correct) re-solve instead of a wrong hit.
id1=$(curl -fsS -X POST "http://$addr/jobs" -d "$unsafe_body" | job_id)
wait_verdict "$id1" false
id2=$(curl -fsS -X POST "http://$addr/jobs" -d "$unsafe_body" | job_id)
wait_verdict "$id2" false
kill -0 "$pid" # still alive after every injected fault
kill "$pid"
wait "$pid" 2>/dev/null || true

echo "server smoke OK"
