// Package zpre is a reproduction of "Interference Relation-Guided SMT
// Solving for Multi-Threaded Program Verification" (Fan, Liu, He; PPoPP
// 2022): a bounded model checker for multi-threaded programs under SC, TSO
// and PSO memory models, built on a from-scratch DPLL(T) engine whose
// decision order can be guided by the interference relation (read-from and
// write-serialization variables) of the encoded program.
//
// The package is a thin facade over the internal packages:
//
//	cprog    — the concurrent program language, parser and unroller
//	memmodel — SC/TSO/PSO program-order rules
//	encode   — the partial-order verification-condition encoder
//	smt/sat  — the DPLL(T) engine (CDCL core + ordering theory)
//	core     — the paper's interference decision-order strategies
//
// Typical use:
//
//	prog, _ := zpre.ParseProgram("example", src)
//	rep, _ := zpre.Verify(prog, zpre.Options{
//	    Model:    zpre.TSO,
//	    Strategy: zpre.ZPRE,
//	    Unroll:   3,
//	})
//	fmt.Println(rep.Verdict) // Safe (unsat) or Unsafe (sat)
package zpre

import (
	"context"
	"fmt"
	"time"

	"zpre/internal/core"
	"zpre/internal/cprog"
	"zpre/internal/dataflow"
	"zpre/internal/encode"
	"zpre/internal/faultinject"
	"zpre/internal/memmodel"
	"zpre/internal/obs"
	"zpre/internal/order"
	"zpre/internal/rg"
	"zpre/internal/sat"
	"zpre/internal/smt"
	"zpre/internal/telemetry"
	"zpre/internal/witness"
)

// Re-exported memory models.
const (
	SC  = memmodel.SC
	TSO = memmodel.TSO
	PSO = memmodel.PSO
)

// Re-exported strategies (Table 3's three configurations, plus the
// static-analysis-seeded extension).
const (
	Baseline  = core.Baseline // stock VSIDS order — the paper's "Z3"
	ZPREMinus = core.ZPREMinus
	ZPRE      = core.ZPRE
	// ZPREStatic ranks interference variables by the static conflict score
	// of their event pair (racy pairs first) before the #write tie-break.
	ZPREStatic = core.ZPREStatic
)

// Verdict is the verification outcome at the given unrolling bound.
type Verdict int

// Verdicts.
const (
	// Unknown means the solver budget was exhausted.
	Unknown Verdict = iota
	// Safe means the VC is unsatisfiable: no assertion violation is
	// reachable within the unrolling bound.
	Safe
	// Unsafe means the VC is satisfiable: a violating execution exists.
	Unsafe
	// UnboundedSafe means the rely-guarantee proof-outline engine
	// (Options.RG) discharged every assertion at its interference fixpoint:
	// the program is safe at EVERY unrolling bound, not just the requested
	// one, and no SMT instance was encoded or solved.
	UnboundedSafe
)

// String renders the verdict in SV-COMP vocabulary.
func (v Verdict) String() string {
	switch v {
	case Safe, UnboundedSafe:
		return "true"
	case Unsafe:
		return "false"
	}
	return "unknown"
}

// Options configures a Verify call.
type Options struct {
	// Model is the memory model (SC, TSO or PSO). Default SC.
	Model memmodel.Model
	// Strategy selects the decision order (Baseline, ZPREMinus, ZPRE).
	Strategy core.Strategy
	// Unroll is the loop unrolling bound (default 1).
	Unroll int
	// Width is the program integer bit width (default 8).
	Width int
	// Timeout bounds the solving wall-clock time (0 = none).
	Timeout time.Duration
	// MaxConflicts bounds the search (0 = none).
	MaxConflicts uint64
	// MaxDecisions bounds the decisions per solve (0 = none).
	MaxDecisions uint64
	// MaxMemoryBytes caps the solver's approximate allocation accounting;
	// exceeding it yields a graceful Unknown instead of an OOM (0 = none).
	MaxMemoryBytes int64
	// Context, when non-nil, cancels the solve cooperatively (e.g. from a
	// SIGINT handler); the verdict comes back Unknown with
	// Report.Stop == sat.StopCancelled.
	Context context.Context
	// Seed drives the random polarity of interference decisions.
	Seed int64
	// Polarity overrides the interference decision polarity (default
	// random, as in the paper).
	Polarity core.PolarityMode
	// DisableNumWrites drops the #write ranking from ZPRE (ablation).
	DisableNumWrites bool
	// EagerOrderPropagation turns on eager reachability propagation in the
	// ordering theory (ablation; off in the paper's setting).
	EagerOrderPropagation bool
	// StaticPrune drops interference candidates the static lockset/MHP
	// pre-analysis proves redundant before solving (see
	// encode.Options.StaticPrune). The pruned VC is equisatisfiable;
	// Report.EncodeStats.RFPruned/WSPruned count the dropped candidates.
	StaticPrune bool
	// Dataflow enables the value-flow pre-analysis (see
	// encode.Options.Dataflow): pre-encoding constant/copy simplification,
	// value-infeasible rf candidate pruning and fixed happens-before
	// derivation. Equisatisfiable; Report.EncodeStats.ValuePruned/
	// FoldedAssigns/FixedHB count its effects.
	Dataflow bool
	// RG runs the rely-guarantee proof-outline engine (internal/rg) before
	// encoding. If it proves every assertion at its interference fixpoint,
	// Verify returns UnboundedSafe without encoding or solving (zero
	// decisions). Otherwise the engine's interference-stabilized variable
	// ranges are injected into the encoder as guarded per-read invariants
	// (equisatisfiable; Report.EncodeStats.RGInvariants counts them).
	// Ignored by VerifyEach and VerifyWithProof, whose per-assert indexing
	// and proof traces require the full SMT instance.
	RG bool
	// RGDomain selects the rely-guarantee engine's abstract domain:
	// rg.DomainInterval (default) or rg.DomainDBM, which layers the
	// relational zone analysis (internal/relational) onto the proof
	// outlines — closed-form exit bounds sharpen the post-state, a
	// difference-bound matrix tracks variable differences through the post
	// walk, and assertions the interval domain cannot see (x ≥ y, x−y ≤ c)
	// become provable. Only consulted when RG is true.
	RGDomain string
	// RGPrefilter enables the rely-guarantee engine's cheap pre-filter:
	// proof attempts whose assertions are not domain-expressible, or that
	// round 1 already refutes under the strongest (empty) rely, are skipped
	// before the interference fixpoint spends its budget
	// (Report.RGSkippedPrefilter). Never flips a verdict — a skipped
	// attempt reports unproved, exactly what the full run would have
	// concluded. Only consulted when RG is true.
	RGPrefilter bool
	// MHB runs the must-happens-before closure engine before solving (see
	// encode.Options.MHB): forced rf edges of unconditional
	// single-candidate reads are fixed statically, the must-fr edges they
	// entail are derived, and contradicted rf/ws candidates are elided.
	// Equisatisfiable; Report.EncodeStats.MHBFixedRF/MHBFixedFR/MHBPruned
	// count its effects, and the closed relation feeds the ZPRE decision
	// order (must-ordered interference variables are decided last).
	MHB bool
	// RGResult supplies a precomputed rely-guarantee result for this
	// (program, model, width), skipping the analysis inside Verify; callers
	// running many bounds of one program (the harness, the incremental
	// sweep) compute it once and share it. Only consulted when RG is true.
	RGResult *rg.Result
	// TraceSink, when non-nil, receives the structured search trace
	// (decisions with variable class, conflicts with LBD, restarts, ...;
	// see internal/telemetry). The caller owns the sink's lifetime.
	TraceSink telemetry.Sink
	// TraceEvery subsamples high-volume trace events: every Nth
	// decision/conflict is recorded (0 or 1 = all; counts stay exact).
	TraceEvery int
	// TraceTask labels the trace's meta record. Verify defaults it to the
	// program name.
	TraceTask string
	// TimePhases splits solve time across BCP/theory/analyze/reduce into
	// Report.SearchTimings.
	TimePhases bool
	// Spans, when non-nil, receives this call's hierarchical span trace
	// (rg prove, unroll, encode with static/dataflow children, solve with
	// the in-solve phase split) for Chrome trace-event export; see
	// internal/obs. Implies TimePhases. Ignored by VerifyEach.
	Spans *obs.Trace
	// Faults, when non-nil, arms deterministic fault injection at the
	// solver's tracer and theory seams for this call (see
	// internal/faultinject); faults are matched against FaultLabel. Used by
	// the zpred service's chaos harness; nil costs nothing.
	Faults *faultinject.Set
	// FaultLabel is the label Faults match against (defaults to TraceTask).
	FaultLabel string
}

// Report is the result of a Verify call.
type Report struct {
	Verdict Verdict
	// Status is the raw SMT status (Sat = Unsafe, Unsat = Safe).
	Status sat.Status
	// Stop says why an Unknown verdict stopped (deadline, conflict or
	// decision budget, memout, cancelled); sat.StopNone for a verdict.
	Stop sat.StopReason
	// SolverStats carries decisions/propagations/conflicts (Table 2).
	SolverStats sat.Stats
	// EncodeStats summarises the encoded VC (events, rf/ws variables, ...).
	EncodeStats encode.Stats
	// SolveTime is the backend solving time (what the paper measures).
	SolveTime time.Duration
	// EncodeTime is the frontend encoding time.
	EncodeTime time.Duration
	// SearchTimings is the in-solve phase split (Options.TimePhases).
	SearchTimings sat.SearchTimings
	// OrderStats are the ordering theory's work counters (cycle checks,
	// theory conflicts, eager propagations).
	OrderStats order.Stats
	// ProofChecked is true when a Safe verdict's refutation was validated
	// by the independent proof checker (VerifyWithProof only).
	ProofChecked bool
	// RGProved is true when the verdict is UnboundedSafe: the
	// rely-guarantee engine proved the program at every bound and the SMT
	// backend never ran.
	RGProved bool
	// RGStabilizeIters is the engine's outer fixpoint round count
	// (Options.RG only; zero otherwise).
	RGStabilizeIters int
	// RGSkippedPrefilter is true when the rely-guarantee pre-filter
	// (Options.RGPrefilter) skipped the proof attempt — the assertions were
	// not domain-expressible, or round 1 refuted them under the strongest
	// rely — and the SMT backend decided the program alone.
	RGSkippedPrefilter bool
}

// ParseProgram parses the textual program form (see internal/cprog).
func ParseProgram(name, src string) (*cprog.Program, error) {
	return cprog.Parse(name, src)
}

// Verify encodes the program at the configured unrolling bound and memory
// model and solves the verification condition with the selected strategy.
func Verify(p *cprog.Program, opts Options) (Report, error) {
	if opts.Unroll <= 0 {
		opts.Unroll = 1
	}
	if opts.TraceTask == "" {
		opts.TraceTask = p.Name
	}
	var rgRanges map[string]dataflow.Interval
	var rgIters int
	var rgSkipped bool
	if opts.RG {
		rgSpan := opts.Spans.Start("rg.prove")
		res, err := resolveRG(p, opts)
		opts.Spans.End(rgSpan)
		if err != nil {
			return Report{}, err
		}
		rgIters = res.StabilizeIters
		rgSkipped = res.SkippedPrefilter
		if res.Proved {
			return Report{
				Verdict:          UnboundedSafe,
				Status:           sat.Unsat,
				RGProved:         true,
				RGStabilizeIters: res.StabilizeIters,
			}, nil
		}
		rgRanges = res.Ranges
	}
	unrollSpan := opts.Spans.Start("unroll")
	unrolled := cprog.Unroll(p, opts.Unroll, cprog.UnwindAssume)
	opts.Spans.End(unrollSpan)

	encSpan := opts.Spans.Start("encode")
	encStart := time.Now()
	vc, err := encode.Program(unrolled, encode.Options{
		Model:       opts.Model,
		Width:       opts.Width,
		StaticPrune: opts.StaticPrune,
		Dataflow:    opts.Dataflow,
		MHB:         opts.MHB,
		RGRanges:    rgRanges,
	})
	opts.Spans.End(encSpan)
	if err != nil {
		return Report{}, err
	}
	encodeTime := time.Since(encStart)
	if opts.StaticPrune {
		opts.Spans.AddChild(encSpan, "encode.static", vc.Stats.StaticTime)
	}
	if opts.Dataflow {
		opts.Spans.AddChild(encSpan, "encode.dataflow", vc.Stats.DataflowTime)
	}

	rep, err := solveVC(vc, opts, encodeTime)
	if err != nil {
		return Report{}, err
	}
	rep.EncodeTime = encodeTime
	rep.RGStabilizeIters = rgIters
	rep.RGSkippedPrefilter = rgSkipped
	return rep, nil
}

// resolveRG returns the caller's precomputed rely-guarantee result or runs
// the engine for this (program, model, width).
func resolveRG(p *cprog.Program, opts Options) (*rg.Result, error) {
	if opts.RGResult != nil {
		return opts.RGResult, nil
	}
	return rg.Prove(p, rg.Options{
		Model:     opts.Model,
		Width:     opts.Width,
		Domain:    opts.RGDomain,
		Prefilter: opts.RGPrefilter,
	})
}

// SolveVC runs the backend on an already-encoded verification condition.
// This is the seam the paper's evaluation measures: the same SMT instance is
// solved with different decision strategies.
func SolveVC(vc *encode.VC, opts Options) (Report, error) {
	return solveVC(vc, opts, 0)
}

// solveVC is SolveVC with the caller's encode duration, so a trace opened
// here records the full parse→encode→static→solve span set.
func solveVC(vc *encode.VC, opts Options, encodeTime time.Duration) (Report, error) {
	infos := core.Classify(vc.Builder.NamedVars())
	dec := core.NewDecider(opts.Strategy, infos, deciderConfig(vc, opts))
	var decider sat.Decider
	if dec != nil {
		decider = dec
	}
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	var tracer *telemetry.SolverTracer
	var satTracer sat.Tracer
	if opts.TraceSink != nil {
		tracer = telemetry.NewSolverTracer(opts.TraceSink, telemetry.TracerOptions{
			Classes:  core.ClassNames(infos),
			Task:     opts.TraceTask,
			Strategy: opts.Strategy.String(),
			Model:    opts.Model.String(),
			Every:    opts.TraceEvery,
		})
		if encodeTime > 0 {
			tracer.Span("encode", encodeTime)
		}
		tracer.Span("static", vc.Stats.StaticTime)
		satTracer = tracer
	}
	sopts := smt.Options{
		Decider:               decider,
		Deadline:              deadline,
		MaxConflicts:          opts.MaxConflicts,
		MaxDecisions:          opts.MaxDecisions,
		MaxMemoryBytes:        opts.MaxMemoryBytes,
		Context:               opts.Context,
		EagerOrderPropagation: opts.EagerOrderPropagation,
		Tracer:                satTracer,
		TimePhases:            opts.TimePhases || tracer != nil || opts.Spans != nil,
	}
	if opts.Faults != nil {
		label := opts.FaultLabel
		if label == "" {
			label = opts.TraceTask
		}
		sopts.Tracer = opts.Faults.Tracer(label, sopts.Tracer)
		sopts.WrapTheory = func(th sat.Theory) sat.Theory {
			return opts.Faults.Theory(label, th)
		}
	}
	solveSpan := opts.Spans.Start("solve")
	res, err := vc.Builder.Solve(sopts)
	opts.Spans.End(solveSpan)
	if err != nil {
		return Report{}, err
	}
	opts.Spans.AddChild(solveSpan, "solve.bcp", res.Timings.BCP)
	opts.Spans.AddChild(solveSpan, "solve.theory", res.Timings.Theory)
	opts.Spans.AddChild(solveSpan, "solve.analyze", res.Timings.Analyze)
	opts.Spans.AddChild(solveSpan, "solve.reduce", res.Timings.Reduce)
	opts.Spans.AddChild(solveSpan, "solve.inprocess", res.Timings.Inprocess)
	if tracer != nil {
		tracer.Span("solve", res.Elapsed)
		tracer.Span("solve.bcp", res.Timings.BCP)
		tracer.Span("solve.theory", res.Timings.Theory)
		tracer.Span("solve.analyze", res.Timings.Analyze)
		tracer.Span("solve.reduce", res.Timings.Reduce)
		tracer.Span("solve.inprocess", res.Timings.Inprocess)
		if err := tracer.Close(res.StatsDelta); err != nil {
			return Report{}, fmt.Errorf("zpre: trace sink: %w", err)
		}
	}
	verdict := Unknown
	switch res.Status {
	case sat.Sat:
		verdict = Unsafe
	case sat.Unsat:
		verdict = Safe
	}
	return Report{
		Verdict:       verdict,
		Status:        res.Status,
		Stop:          res.Stop,
		SolverStats:   res.Stats,
		EncodeStats:   vc.Stats,
		SolveTime:     res.Elapsed,
		SearchTimings: res.Timings,
		OrderStats:    res.OrderStats,
	}, nil
}

// deciderConfig builds the strategy configuration for a solve, attaching
// the static conflict scorer when the VC carries an aligned pre-analysis
// (consumed by the ZPREStatic strategy; ignored by the others). When the
// must-happens-before closure ran, interference variables whose two
// accesses it proved must-ordered are down-ranked below every other pair:
// their value is forced by unit propagation from the level-0 fixed edges,
// so deciding them early is pure search noise.
func deciderConfig(vc *encode.VC, opts Options) core.Config {
	cfg := core.Config{
		Seed:             opts.Seed,
		Polarity:         opts.Polarity,
		DisableNumWrites: opts.DisableNumWrites,
	}
	st, ordered := vc.Static, vc.MHBOrdered
	if st != nil || ordered != nil {
		cfg.Score = func(vi core.VarInfo) int {
			if ordered != nil && ordered(vi.ReadThread, vi.ReadIdx, vi.WriteThread, vi.WriteIdx) {
				return -1
			}
			if st == nil {
				return 0
			}
			return st.PairScore(vi.ReadThread, vi.ReadIdx, vi.WriteThread, vi.WriteIdx)
		}
	}
	return cfg
}

// FindMinimalBound searches unroll bounds 1..maxBound for the smallest
// bound at which the program is unsafe (the paper's k*: "the minimal
// unrolling bound that violates the given property", §5). It returns that
// bound and the corresponding report. If no bound up to maxBound violates,
// it returns 0 and the report of the last (safe or unknown) bound.
func FindMinimalBound(p *cprog.Program, opts Options, maxBound int) (int, Report, error) {
	var last Report
	for k := 1; k <= maxBound; k++ {
		opts.Unroll = k
		rep, err := Verify(p, opts)
		if err != nil {
			return 0, Report{}, err
		}
		last = rep
		if rep.Verdict == Unsafe {
			return k, rep, nil
		}
		if rep.Verdict == UnboundedSafe {
			break // every bound is safe; higher bounds can't violate
		}
		if !p.HasLoops() {
			break // higher bounds encode the identical instance
		}
	}
	return 0, last, nil
}

// AssertReport is the per-assertion outcome of VerifyEach.
type AssertReport struct {
	// Index is the assertion's ordinal in encoding order.
	Index int
	// Thread is the thread the assertion appears in (0 = main's post block).
	Thread int
	// Verdict for this assertion alone.
	Verdict Verdict
	// SolveTime for this assertion's incremental query.
	SolveTime time.Duration
}

// VerifyEach checks every assertion of the program separately: the VC is
// encoded once with selector-guarded violations and each property is solved
// as an incremental assumption query on the same solver, so learnt clauses
// and variable activities carry over between properties.
func VerifyEach(p *cprog.Program, opts Options) ([]AssertReport, error) {
	if opts.Unroll <= 0 {
		opts.Unroll = 1
	}
	unrolled := cprog.Unroll(p, opts.Unroll, cprog.UnwindAssume)
	vc, err := encode.Program(unrolled, encode.Options{
		Model:             opts.Model,
		Width:             opts.Width,
		SelectableAsserts: true,
		StaticPrune:       opts.StaticPrune,
		Dataflow:          opts.Dataflow,
		MHB:               opts.MHB,
	})
	if err != nil {
		return nil, err
	}
	infos := core.Classify(vc.Builder.NamedVars())
	dec := core.NewDecider(opts.Strategy, infos, deciderConfig(vc, opts))
	var decider sat.Decider
	if dec != nil {
		decider = dec
	}
	var out []AssertReport
	for i, sel := range vc.Selectors {
		sopts := smt.Options{
			Decider:        decider,
			MaxConflicts:   opts.MaxConflicts,
			MaxDecisions:   opts.MaxDecisions,
			MaxMemoryBytes: opts.MaxMemoryBytes,
			Context:        opts.Context,
		}
		if opts.Timeout > 0 {
			sopts.Deadline = time.Now().Add(opts.Timeout)
		}
		res, err := vc.Builder.SolveAssuming(sopts, sel)
		if err != nil {
			return nil, err
		}
		verdict := Unknown
		switch res.Status {
		case sat.Sat:
			verdict = Unsafe
		case sat.Unsat:
			verdict = Safe
		}
		out = append(out, AssertReport{
			Index:     i,
			Thread:    vc.AssertThreads[i],
			Verdict:   verdict,
			SolveTime: res.Elapsed,
		})
	}
	return out, nil
}

// VerifyWithProof runs Verify in checked mode: a Safe (unsat) verdict's
// inference trace is validated by the independent proof checker
// (internal/proof), and an Unsafe (sat) verdict's model is linearised into
// a witness schedule whose memory semantics are validated
// (internal/witness). A rejection in either direction is returned as an
// error — the solver may not vouch for itself.
func VerifyWithProof(p *cprog.Program, opts Options) (Report, error) {
	if opts.Unroll <= 0 {
		opts.Unroll = 1
	}
	unrolled := cprog.Unroll(p, opts.Unroll, cprog.UnwindAssume)
	vc, err := encode.Program(unrolled, encode.Options{
		Model:       opts.Model,
		Width:       opts.Width,
		WithProof:   true,
		StaticPrune: opts.StaticPrune,
		Dataflow:    opts.Dataflow,
		MHB:         opts.MHB,
	})
	if err != nil {
		return Report{}, err
	}
	rep, err := SolveVC(vc, opts)
	if err != nil {
		return Report{}, err
	}
	switch rep.Verdict {
	case Safe:
		if err := vc.Builder.CheckProof(vc.Proof); err != nil {
			return Report{}, fmt.Errorf("unsat verdict failed proof checking: %w", err)
		}
		rep.ProofChecked = true
	case Unsafe:
		steps, err := witness.Extract(vc)
		if err != nil {
			return Report{}, fmt.Errorf("sat verdict yielded no witness: %w", err)
		}
		if err := witness.Validate(steps); err != nil {
			return Report{}, fmt.Errorf("sat verdict failed witness validation: %w", err)
		}
		rep.ProofChecked = true
	}
	return rep, nil
}
