package zpre

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§5), plus ablation benches for the design choices
// DESIGN.md calls out. Each benchmark runs the corresponding slice of the
// evaluation and reports the paper's headline quantity (speedup or ratio)
// as a custom metric, so `go test -bench=. -benchmem` regenerates every
// experiment. Absolute numbers differ from the paper's (different machine,
// different solver, scaled corpus); the shape — who wins, by roughly what
// factor, where WMM amplifies the win — is the reproduction target.
//
// The table/figure ↔ benchmark mapping is indexed in DESIGN.md §4.

import (
	"testing"
	"time"

	"zpre/internal/core"
	"zpre/internal/cprog"
	"zpre/internal/encode"
	"zpre/internal/harness"
	"zpre/internal/memmodel"
	"zpre/internal/sat"
	"zpre/internal/smt"
	"zpre/internal/svcomp"
)

// benchConfig is the evaluation slice used by the table/figure benches:
// width 16 makes the instances hard enough that search dominates overhead
// (see EXPERIMENTS.md), bounds 1..3 scale the looped programs.
func benchConfig(models []memmodel.Model, strategies []core.Strategy) harness.Config {
	return harness.Config{
		Models:     models,
		Strategies: strategies,
		Bounds:     []int{1, 2, 3},
		Timeout:    60 * time.Second,
		Width:      16,
		Seed:       1,
	}
}

func reportTable1(b *testing.B, res *harness.Results) {
	for _, row := range res.Table1() {
		b.ReportMetric(float64(row.AllBase())/float64(row.AllZpre()),
			"speedup_"+row.Model.String())
	}
}

// BenchmarkTable1_Overall regenerates Table 1: both-solved accumulated time
// of baseline vs ZPRE under SC, TSO and PSO, reported as speedup metrics.
func BenchmarkTable1_Overall(b *testing.B) {
	cfg := benchConfig(memmodel.All(), []core.Strategy{core.Baseline, core.ZPRE})
	for i := 0; i < b.N; i++ {
		res := harness.Run(cfg)
		if i == b.N-1 {
			reportTable1(b, res)
		}
	}
}

// BenchmarkTable2_SearchCounters regenerates Table 2: decisions,
// propagations and conflicts ratios of baseline vs ZPRE per memory model.
func BenchmarkTable2_SearchCounters(b *testing.B) {
	cfg := benchConfig(memmodel.All(), []core.Strategy{core.Baseline, core.ZPRE})
	for i := 0; i < b.N; i++ {
		res := harness.Run(cfg)
		if i == b.N-1 {
			for _, row := range res.Table2() {
				m := row.Model.String()
				b.ReportMetric(float64(row.DecisionsBase)/float64(row.DecisionsZpre), "decisions_"+m)
				b.ReportMetric(float64(row.PropsBase)/float64(row.PropsZpre), "props_"+m)
				b.ReportMetric(float64(row.ConflictsBase)/float64(row.ConflictsZpre), "conflicts_"+m)
			}
		}
	}
}

// BenchmarkTable3_ThreeStrategies regenerates Table 3: baseline vs ZPRE⁻ vs
// ZPRE, reporting both speedups per model.
func BenchmarkTable3_ThreeStrategies(b *testing.B) {
	cfg := benchConfig(memmodel.All(),
		[]core.Strategy{core.Baseline, core.ZPREMinus, core.ZPRE})
	for i := 0; i < b.N; i++ {
		res := harness.Run(cfg)
		if i == b.N-1 {
			for _, row := range res.Table3() {
				for _, per := range row.Per {
					if per.Strategy == core.Baseline {
						continue
					}
					b.ReportMetric(per.Speedup,
						per.Strategy.String()+"_"+row.Model.String())
				}
			}
		}
	}
}

// scatterBench regenerates one of Figures 6-8: the per-task scatter for a
// model. The reported metrics are the fraction of tasks below the diagonal
// (ZPRE wins) and the overall speedup.
func scatterBench(b *testing.B, mm memmodel.Model) {
	cfg := benchConfig([]memmodel.Model{mm}, []core.Strategy{core.Baseline, core.ZPRE})
	for i := 0; i < b.N; i++ {
		res := harness.Run(cfg)
		if i == b.N-1 {
			points := res.Scatter(mm)
			wins := 0
			for _, p := range points {
				if p.Zpre < p.Base {
					wins++
				}
			}
			b.ReportMetric(float64(len(points)), "tasks")
			b.ReportMetric(float64(wins)/float64(len(points)), "zpre_win_fraction")
			reportTable1(b, res)
		}
	}
}

// BenchmarkFigure6_ScatterSC regenerates Figure 6 (SC scatter).
func BenchmarkFigure6_ScatterSC(b *testing.B) { scatterBench(b, memmodel.SC) }

// BenchmarkFigure7_ScatterTSO regenerates Figure 7 (TSO scatter).
func BenchmarkFigure7_ScatterTSO(b *testing.B) { scatterBench(b, memmodel.TSO) }

// BenchmarkFigure8_ScatterPSO regenerates Figure 8 (PSO scatter).
func BenchmarkFigure8_ScatterPSO(b *testing.B) { scatterBench(b, memmodel.PSO) }

// subcatBench regenerates one of Figures 9-11: per-subcategory accumulated
// times; the per-subcategory speedups are the reported metrics.
func subcatBench(b *testing.B, mm memmodel.Model) {
	cfg := benchConfig([]memmodel.Model{mm}, []core.Strategy{core.Baseline, core.ZPRE})
	for i := 0; i < b.N; i++ {
		res := harness.Run(cfg)
		if i == b.N-1 {
			for _, row := range res.SubcategoryTimes(mm) {
				b.ReportMetric(row.Speedup(), row.Subcategory)
			}
		}
	}
}

// BenchmarkFigure9_SubcatSC regenerates Figure 9 (per-subcategory, SC).
func BenchmarkFigure9_SubcatSC(b *testing.B) { subcatBench(b, memmodel.SC) }

// BenchmarkFigure10_SubcatTSO regenerates Figure 10 (per-subcategory, TSO).
func BenchmarkFigure10_SubcatTSO(b *testing.B) { subcatBench(b, memmodel.TSO) }

// BenchmarkFigure11_SubcatPSO regenerates Figure 11 (per-subcategory, PSO).
func BenchmarkFigure11_SubcatPSO(b *testing.B) { subcatBench(b, memmodel.PSO) }

// hardTasks returns a fixed set of search-heavy instances for the ablations.
func hardTasks() []harness.Task {
	byName := map[string]svcomp.Benchmark{}
	for _, bench := range svcomp.All() {
		byName[bench.Name] = bench
	}
	var tasks []harness.Task
	for _, pick := range []struct {
		name  string
		bound int
	}{
		{"incr_lock_safe_5", 1},
		{"incr_lock_safe_6", 1},
		{"parsum_lock_safe_5", 1},
		{"fib_bench_safe_2", 3},
		{"long_cs_safe_3", 1},
		{"peterson_fenced", 1},
	} {
		bench, ok := byName[pick.name]
		if !ok {
			panic("missing ablation benchmark " + pick.name)
		}
		for _, mm := range memmodel.All() {
			tasks = append(tasks, harness.Task{Bench: bench, Model: mm, Bound: pick.bound})
		}
	}
	return tasks
}

// solveTask encodes and solves one task with explicit options, returning the
// elapsed solve time and stats.
func solveTask(b *testing.B, task harness.Task, strat core.Strategy, cfg core.Config, eager bool) (time.Duration, sat.Stats) {
	b.Helper()
	unrolled := cprog.Unroll(task.Bench.Program, task.Bound, cprog.UnwindAssume)
	vc, err := encode.Program(unrolled, encode.Options{Model: task.Model, Width: 16})
	if err != nil {
		b.Fatal(err)
	}
	infos := core.Classify(vc.Builder.NamedVars())
	dec := core.NewDecider(strat, infos, cfg)
	var decider sat.Decider
	if dec != nil {
		decider = dec
	}
	res, err := vc.Builder.Solve(smt.Options{Decider: decider, EagerOrderPropagation: eager})
	if err != nil {
		b.Fatal(err)
	}
	if res.Status == sat.Unknown {
		b.Fatal("ablation task did not solve")
	}
	return res.Elapsed, res.Stats
}

// BenchmarkAblation_RandomPolarity compares the paper's random polarity for
// interference decisions against always-true and always-false (DESIGN.md
// ablation: is the randomness load-bearing?).
func BenchmarkAblation_RandomPolarity(b *testing.B) {
	tasks := hardTasks()
	for i := 0; i < b.N; i++ {
		var tRandom, tTrue, tFalse time.Duration
		for _, task := range tasks {
			d1, _ := solveTask(b, task, core.ZPRE, core.Config{Seed: 1, Polarity: core.PolarityRandom}, false)
			d2, _ := solveTask(b, task, core.ZPRE, core.Config{Polarity: core.PolarityTrue}, false)
			d3, _ := solveTask(b, task, core.ZPRE, core.Config{Polarity: core.PolarityFalse}, false)
			tRandom += d1
			tTrue += d2
			tFalse += d3
		}
		if i == b.N-1 {
			b.ReportMetric(tRandom.Seconds(), "random_s")
			b.ReportMetric(tTrue.Seconds(), "true_s")
			b.ReportMetric(tFalse.Seconds(), "false_s")
		}
	}
}

// BenchmarkAblation_NumWriteTieBreak compares full ZPRE against ZPRE without
// the #write ranking (heuristic 3 of §4.1).
func BenchmarkAblation_NumWriteTieBreak(b *testing.B) {
	tasks := hardTasks()
	for i := 0; i < b.N; i++ {
		var full, flat time.Duration
		var fullDecs, flatDecs uint64
		for _, task := range tasks {
			d1, s1 := solveTask(b, task, core.ZPRE, core.Config{Seed: 1}, false)
			d2, s2 := solveTask(b, task, core.ZPRE, core.Config{Seed: 1, DisableNumWrites: true}, false)
			full += d1
			flat += d2
			fullDecs += s1.Decisions
			flatDecs += s2.Decisions
		}
		if i == b.N-1 {
			b.ReportMetric(full.Seconds(), "with_numwrite_s")
			b.ReportMetric(flat.Seconds(), "without_numwrite_s")
			b.ReportMetric(float64(flatDecs)/float64(fullDecs), "decision_ratio")
		}
	}
}

// BenchmarkAblation_OrderTheoryPropagation compares lazy (conflict-only, the
// paper's setting) against eager reachability propagation in the ordering
// theory.
func BenchmarkAblation_OrderTheoryPropagation(b *testing.B) {
	tasks := hardTasks()
	for i := 0; i < b.N; i++ {
		var lazy, eager time.Duration
		for _, task := range tasks {
			d1, _ := solveTask(b, task, core.ZPRE, core.Config{Seed: 1}, false)
			d2, _ := solveTask(b, task, core.ZPRE, core.Config{Seed: 1}, true)
			lazy += d1
			eager += d2
		}
		if i == b.N-1 {
			b.ReportMetric(lazy.Seconds(), "lazy_s")
			b.ReportMetric(eager.Seconds(), "eager_s")
		}
	}
}

// Micro-benchmarks for the substrates.

// BenchmarkMicro_SATPigeonhole measures the raw CDCL core on pigeonhole(7).
func BenchmarkMicro_SATPigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sat.New()
		n := 7
		vars := make([][]sat.Var, n+1)
		for p := 0; p <= n; p++ {
			vars[p] = make([]sat.Var, n)
			for h := 0; h < n; h++ {
				vars[p][h] = s.NewVar()
			}
			lits := make([]sat.Lit, n)
			for h := 0; h < n; h++ {
				lits[h] = sat.PosLit(vars[p][h])
			}
			s.AddClause(lits...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					s.AddClause(sat.NegLit(vars[p1][h]), sat.NegLit(vars[p2][h]))
				}
			}
		}
		if s.Solve() != sat.Unsat {
			b.Fatal("php must be unsat")
		}
	}
}

// BenchmarkMicro_EncodeFig2 measures frontend encoding throughput.
func BenchmarkMicro_EncodeFig2(b *testing.B) {
	prog := svcomp.BySubcategory("lit")[0].Program
	for i := 0; i < b.N; i++ {
		if _, err := encode.Program(prog, encode.Options{Model: memmodel.TSO, Width: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_VerifyPeterson measures the whole pipeline on Peterson/TSO.
func BenchmarkMicro_VerifyPeterson(b *testing.B) {
	var prog *cprog.Program
	for _, bench := range svcomp.Lit() {
		if bench.Name == "peterson" {
			prog = bench.Program
		}
	}
	for i := 0; i < b.N; i++ {
		rep, err := Verify(prog, Options{Model: TSO, Strategy: ZPRE, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Verdict != Unsafe {
			b.Fatal("peterson must be unsafe under TSO")
		}
	}
}

// BenchmarkAblation_BranchHeuristic reproduces the paper's "Other Attempts"
// (§5.2): combining with the control-flow (branch-condition) heuristic of
// Chen & He 2018. On ConcurrencySafety-style programs branches are scarce,
// so branch-first should track the baseline while ZPRE keeps its edge.
func BenchmarkAblation_BranchHeuristic(b *testing.B) {
	tasks := hardTasks()
	for i := 0; i < b.N; i++ {
		var tBase, tBranch, tZpre, tBoth time.Duration
		for _, task := range tasks {
			d0, _ := solveTask(b, task, core.Baseline, core.Config{}, false)
			d1, _ := solveTask(b, task, core.BranchFirst, core.Config{Seed: 1}, false)
			d2, _ := solveTask(b, task, core.ZPRE, core.Config{Seed: 1}, false)
			d3, _ := solveTask(b, task, core.ZPREBranch, core.Config{Seed: 1}, false)
			tBase += d0
			tBranch += d1
			tZpre += d2
			tBoth += d3
		}
		if i == b.N-1 {
			b.ReportMetric(tBase.Seconds()/tBranch.Seconds(), "branch_speedup")
			b.ReportMetric(tBase.Seconds()/tZpre.Seconds(), "zpre_speedup")
			b.ReportMetric(tBase.Seconds()/tBoth.Seconds(), "zpre_branch_speedup")
		}
	}
}
