package zpre

import (
	"errors"
	"testing"
	"time"

	"zpre/internal/core"
	"zpre/internal/cprog"
	"zpre/internal/incremental"
	"zpre/internal/interp"
	"zpre/internal/memmodel"
	"zpre/internal/svcomp"
)

// TestMHBDifferentialCorpus verifies every bundled benchmark under all
// three memory models with the must-happens-before closure off and on —
// both alone and stacked with the static prune and the dataflow pass — and
// demands identical verdicts everywhere. Where the corpus records a ground
// truth, the closed verdict must also match it. Fixing rf edges, deriving
// must-fr edges and eliding determined candidates all claim
// equisatisfiability, so any flip is a soundness bug in the closure.
func TestMHBDifferentialCorpus(t *testing.T) {
	benches := svcomp.All()
	if testing.Short() {
		benches = nil
		for _, sub := range []string{"lit", "pthread"} {
			benches = append(benches, svcomp.BySubcategory(sub)...)
		}
	}
	const budget = 200_000 // conflicts; deterministic, generous for MinBound
	compared, fixedRF, fixedFR, pruned := 0, 0, 0, 0
	for _, b := range benches {
		for _, mm := range memmodel.All() {
			base, err := Verify(b.Program, Options{
				Model: mm, Strategy: ZPRE, Unroll: b.MinBound, Seed: 7,
				MaxConflicts: budget,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", b.Name, mm, err)
			}
			mhb, err := Verify(b.Program, Options{
				Model: mm, Strategy: ZPRE, Unroll: b.MinBound, Seed: 7,
				MaxConflicts: budget, MHB: true,
			})
			if err != nil {
				t.Fatalf("%s/%v (mhb): %v", b.Name, mm, err)
			}
			stacked, err := Verify(b.Program, Options{
				Model: mm, Strategy: ZPREStatic, Unroll: b.MinBound, Seed: 7,
				MaxConflicts: budget, MHB: true, StaticPrune: true, Dataflow: true,
			})
			if err != nil {
				t.Fatalf("%s/%v (mhb+prune+dataflow): %v", b.Name, mm, err)
			}
			fixedRF += mhb.EncodeStats.MHBFixedRF
			fixedFR += mhb.EncodeStats.MHBFixedFR
			pruned += mhb.EncodeStats.MHBPruned + mhb.EncodeStats.WSPruned
			if base.Verdict == Unknown || mhb.Verdict == Unknown || stacked.Verdict == Unknown {
				continue // budget exhausted on one side; nothing to compare
			}
			if base.Verdict != mhb.Verdict {
				t.Errorf("%s/%s/%v: mhb flipped the verdict: %v -> %v",
					b.Subcategory, b.Name, mm, base.Verdict, mhb.Verdict)
			}
			if base.Verdict != stacked.Verdict {
				t.Errorf("%s/%s/%v: mhb+prune+dataflow flipped the verdict: %v -> %v",
					b.Subcategory, b.Name, mm, base.Verdict, stacked.Verdict)
			}
			if exp, ok := b.Expected[mm]; ok && exp != svcomp.ExpectUnknown {
				want := Safe
				if exp == svcomp.ExpectUnsafe {
					want = Unsafe
				}
				if mhb.Verdict != want {
					t.Errorf("%s/%s/%v: mhb verdict %v contradicts ground truth %v",
						b.Subcategory, b.Name, mm, mhb.Verdict, want)
				}
			}
			compared++
		}
	}
	if compared == 0 {
		t.Fatal("no verdict comparisons ran")
	}
	// The bundled corpus never isolates a cross-thread rf candidate for an
	// unconditional read (its wait loops test two shared variables, so the
	// assume-pattern refinement cannot collapse a candidate set to one), so
	// no fixed edges are expected here; TestMHBFixesForcedEdges pins the
	// edge-fixing path on programs shaped to exercise it, and the analysis
	// package unit-tests the fixpoint itself. The corpus still must show
	// the closure's elision effect.
	if pruned == 0 {
		t.Fatal("the closure elided no candidate anywhere in the corpus")
	}
	t.Logf("compared %d verdicts; %d rf edges fixed, %d must-fr derived, %d candidates elided",
		compared, fixedRF, fixedFR, pruned)
}

// TestMHBFixesForcedEdges feeds the closure programs whose rf candidate
// sets genuinely collapse — message-passing through a flag read that an
// assume pins to a single writer — and demands fixed rf edges, derived
// must-fr edges, and unchanged verdicts in both the safe and the unsafe
// variant (a closure that fixes edges must not mask a real bug).
func TestMHBFixesForcedEdges(t *testing.T) {
	const mpSafe = `
shared x = 0;
shared f = 0;
thread t1 {
    x = 1;
    f = 1;
}
thread t2 {
    local r;
    assume(f == 1);
    r = x;
    assert(r == 1);
}
main { }
`
	// Same handshake, but t1 publishes the flag before the payload: t2 can
	// observe x == 0, so the assert is violated under every model.
	const mpUnsafe = `
shared x = 0;
shared f = 0;
thread t1 {
    f = 1;
    x = 1;
}
thread t2 {
    local r;
    assume(f == 1);
    r = x;
    assert(r == 1);
}
main { }
`
	// A second flag write after the handshake: the fixed rf edge for the
	// f-read entails a must-fr edge (the read precedes the overwrite).
	const mpFR = `
shared x = 0;
shared f = 0;
thread t1 {
    x = 1;
    f = 1;
    f = 2;
}
thread t2 {
    local r;
    assume(f == 1);
    r = x;
    assert(r == 1);
}
main { }
`
	cases := []struct {
		name    string
		src     string
		fixedRF bool
		fixedFR bool
	}{
		{"mp_safe", mpSafe, true, false},
		{"mp_unsafe", mpUnsafe, true, false},
		{"mp_must_fr", mpFR, true, true},
	}
	for _, tc := range cases {
		p, err := cprog.Parse(tc.name, tc.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		for _, mm := range memmodel.All() {
			// Ground truth per model from the explicit-state interpreter
			// (the message-passing idiom flips to unsafe under weak
			// store-order, so verdicts are not hardcoded).
			ores, err := interp.Run(p, 1, interp.Options{Model: mm, Width: 8, MaxStates: 1 << 20})
			if err != nil {
				t.Fatalf("%s/%v: interp: %v", tc.name, mm, err)
			}
			want := Safe
			if ores == interp.Unsafe {
				want = Unsafe
			}
			plain, err := Verify(p, Options{Model: mm, Unroll: 1, Seed: 7})
			if err != nil {
				t.Fatalf("%s/%v: plain: %v", tc.name, mm, err)
			}
			mhb, err := Verify(p, Options{Model: mm, Unroll: 1, Seed: 7, MHB: true})
			if err != nil {
				t.Fatalf("%s/%v: mhb: %v", tc.name, mm, err)
			}
			if plain.Verdict != want || mhb.Verdict != want {
				t.Errorf("%s/%v: oracle %v, plain=%v mhb=%v",
					tc.name, mm, want, plain.Verdict, mhb.Verdict)
			}
			if tc.fixedRF && mhb.EncodeStats.MHBFixedRF == 0 {
				t.Errorf("%s/%v: closure fixed no rf edge", tc.name, mm)
			}
			if tc.fixedFR && mhb.EncodeStats.MHBFixedFR == 0 {
				t.Errorf("%s/%v: closure derived no must-fr edge", tc.name, mm)
			}
		}
	}
}

// TestMHBIncrementalUnaffected pins the bound-monotonicity contract: the
// incremental sweep accepts the MHB flag for configuration symmetry but
// must force it off (a read that is single-candidate at bound k can gain
// candidates at bound k+1, so an edge fixed early would over-constrain the
// later instance). The sweep with the flag set must match the fresh
// MHB-closed pipeline bound for bound.
func TestMHBIncrementalUnaffected(t *testing.T) {
	models := []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO}
	var loopy []svcomp.Benchmark
	for _, b := range svcomp.All() {
		if b.Program.HasLoops() {
			loopy = append(loopy, b)
		}
	}
	if len(loopy) > 12 {
		loopy = loopy[:12] // deterministic order; a sample exercises the seam
	}
	checks := 0
	for _, b := range loopy {
		for _, model := range models {
			sweep, err := incremental.New(b.Program, incremental.Options{
				Model: model, Strategy: core.ZPRE, Timeout: 30 * time.Second, MHB: true,
			})
			if errors.Is(err, incremental.ErrUnsupported) {
				continue
			}
			if err != nil {
				t.Fatalf("%s@%s: incremental setup: %v", b.Name, model, err)
			}
			for k := 1; k <= 3; k++ {
				br, err := sweep.Next()
				if err != nil {
					t.Fatalf("%s@%s/k%d: incremental: %v", b.Name, model, k, err)
				}
				if fixed := sweep.VC().Stats.MHBFixedRF + sweep.VC().Stats.MHBFixedFR; fixed != 0 {
					t.Fatalf("%s@%s/k%d: delta encoder fixed %d MHB edges; must be forced off",
						b.Name, model, k, fixed)
				}
				rep, err := Verify(b.Program, Options{
					Model: model, Strategy: ZPRE, Unroll: k, Timeout: 30 * time.Second, MHB: true,
				})
				if err != nil {
					t.Fatalf("%s@%s/k%d: fresh: %v", b.Name, model, k, err)
				}
				if rep.Verdict == Unknown || br.Verdict == incremental.Unknown {
					t.Fatalf("%s@%s/k%d: inconclusive", b.Name, model, k)
				}
				if (rep.Verdict == Unsafe) != (br.Verdict == incremental.Unsafe) {
					t.Errorf("%s@%s/k%d: fresh+mhb=%v incremental=%v",
						b.Name, model, k, rep.Verdict, br.Verdict)
				}
				checks++
			}
		}
	}
	if checks == 0 {
		t.Fatal("no incremental comparisons ran")
	}
}

// FuzzMHBVsPlain decodes random byte streams into small loop-bearing
// concurrent programs and requires the MHB-closed encoding to agree with
// the plain one at bounds 1 and 2, under a byte-chosen memory model — with
// the explicit-state interpreter as a third, independent oracle where its
// state space stays tractable. The closure claims equisatisfiability, so
// any divergence is a soundness bug in the fixpoint, the forced-rf
// derivation or the candidate elision.
func FuzzMHBVsPlain(f *testing.F) {
	f.Add([]byte("\x00\x00\x20\x08\x40\x07\x41\x03\x00"))
	f.Add([]byte("\x01\x07\x01\x04\x20\x03\x60\x00\x80\x05\x00"))
	f.Add([]byte("\x02\x0f\x81\x06\x20\x04\x40\x07\xc1\x02\x00\x01\x20"))
	f.Add([]byte("\x00\x39\x42\x07\x01\x00\x02\x40\x03\x80"))
	f.Add([]byte("\x02\x06\x1f\x07\xe1\x02\x21\x03\x00\x40"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		model := []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO}[int(data[0])%3]
		p := decodeFuzzProgram(data[1:])
		if err := p.Validate(); err != nil {
			t.Skipf("decoder produced invalid program: %v", err)
		}
		for k := 1; k <= 2; k++ {
			plain, err := Verify(p, Options{
				Model:   model,
				Unroll:  k,
				Width:   3,
				Timeout: 20 * time.Second,
			})
			if err != nil {
				t.Fatalf("plain k%d: %v\n%s", k, err, cprog.Format(p))
			}
			mhb, err := Verify(p, Options{
				Model:   model,
				Unroll:  k,
				Width:   3,
				Timeout: 20 * time.Second,
				MHB:     true,
			})
			if err != nil {
				t.Fatalf("mhb k%d: %v\n%s", k, err, cprog.Format(p))
			}
			if plain.Verdict == Unknown || mhb.Verdict == Unknown {
				t.Skipf("inconclusive at k%d (plain=%v mhb=%v)", k, plain.Verdict, mhb.Verdict)
			}
			if plain.Verdict != mhb.Verdict {
				t.Fatalf("k%d@%s: plain=%v mhb=%v\n%s",
					k, model, plain.Verdict, mhb.Verdict, cprog.Format(p))
			}
			ores, err := interp.Run(p, k, interp.Options{
				Model:     model,
				Width:     3,
				MaxStates: 1 << 20,
			})
			if errors.Is(err, interp.ErrStateExplosion) {
				continue
			}
			if err != nil {
				t.Fatalf("interp k%d: %v\n%s", k, err, cprog.Format(p))
			}
			oracle := Safe
			if ores == interp.Unsafe {
				oracle = Unsafe
			}
			if mhb.Verdict != oracle {
				t.Fatalf("k%d@%s: mhb=%v oracle=%v\n%s",
					k, model, mhb.Verdict, oracle, cprog.Format(p))
			}
		}
	})
}
